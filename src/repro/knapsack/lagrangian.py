"""Lagrangian relaxation of the MMKP with a subgradient method.

The resource constraints of the MMKP are dualised with non-negative
multipliers :math:`\\lambda_k`: the relaxed problem decomposes into one
independent choice per group — pick the item maximising
:math:`v - \\sum_k \\lambda_k w_k`.  The multipliers are updated with a
projected subgradient step on the capacity violations.  This follows the
method used by Wildermann et al. that underlies the paper's MMKP-LR baseline
(the paper limits the subgradient loop to 100 iterations).

Besides the dual bound and multipliers, the solver also reports a *primal*
feasible solution obtained by greedily repairing the relaxed selection.

Two implementations share this module's public surface.  The pure-Python
subgradient loop below is the always-available reference; on hosts with numpy
the :mod:`repro.knapsack._dense` backend runs the same method on padded
ndarrays (and :func:`solve_lagrangian_many` runs whole batches of same-shape
relaxations lock-step).  The dense path reproduces the pure path
bit-identically — same selections, multipliers, dual bounds and iteration
counts — and ``REPRO_SOLVER_NUMPY=0`` forces the pure path everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.knapsack import _dense
from repro.knapsack.mmkp import MMKPProblem, MMKPSolution


@dataclass(frozen=True)
class LagrangianResult:
    """Outcome of the subgradient optimisation.

    Attributes
    ----------
    multipliers:
        The final Lagrange multipliers, one per knapsack dimension.
    dual_bound:
        Best (lowest) Lagrangian dual value found — an upper bound on the
        optimal primal value.
    solution:
        A feasible primal solution obtained by repairing the relaxed
        selection (may be infeasible if even repair fails).
    iterations:
        Number of subgradient iterations performed.
    """

    multipliers: tuple[float, ...]
    dual_bound: float
    solution: MMKPSolution
    iterations: int


def _relaxed_selection(problem: MMKPProblem, multipliers: list[float]) -> list[int]:
    """Per-group argmax of the Lagrangian-reduced value.

    Runs on the problem's dense columns: the subgradient loop evaluates this
    for every item on every iteration, so the flat tuples (no MMKPItem
    attribute lookups) carry most of the solver's hot path.
    """
    selection = []
    dimensions = len(multipliers)
    if dimensions == 1:
        # Unrolled penalty for the dominant 1-D/2-D instances: the same
        # additions in the same order as ``sum(...)``, minus the generator
        # machinery (a ±0.0 sign is the only representable difference and no
        # comparison observes it).
        (m0,) = multipliers
        for group_values, group_rows in zip(problem.dense_values, problem.dense_rows):
            best_index = 0
            best_reduced = float("-inf")
            for index in range(len(group_values)):
                reduced = group_values[index] - m0 * group_rows[index][0]
                if reduced > best_reduced:
                    best_reduced = reduced
                    best_index = index
            selection.append(best_index)
        return selection
    if dimensions == 2:
        m0, m1 = multipliers
        for group_values, group_rows in zip(problem.dense_values, problem.dense_rows):
            best_index = 0
            best_reduced = float("-inf")
            for index in range(len(group_values)):
                row = group_rows[index]
                reduced = group_values[index] - (m0 * row[0] + m1 * row[1])
                if reduced > best_reduced:
                    best_reduced = reduced
                    best_index = index
            selection.append(best_index)
        return selection
    for group_values, group_rows in zip(problem.dense_values, problem.dense_rows):
        best_index = 0
        best_reduced = float("-inf")
        for index in range(len(group_values)):
            reduced = group_values[index] - sum(
                multiplier * weight
                for multiplier, weight in zip(multipliers, group_rows[index])
            )
            if reduced > best_reduced:
                best_reduced = reduced
                best_index = index
        selection.append(best_index)
    return selection


def _repair(problem: MMKPProblem, selection: list[int]) -> MMKPSolution:
    """Turn a (possibly infeasible) relaxed selection into a feasible one.

    Groups whose current item overflows the capacities are downgraded to the
    item with the smallest capacity-normalised weight until the selection
    fits; ties are broken in favour of higher value.
    """
    rows = problem.dense_rows
    current = list(selection)
    for _ in range(problem.num_groups * max(len(g) for g in rows)):
        if problem.is_feasible(current):
            return MMKPSolution(tuple(current), problem.value_of(current), True)
        # Find the dimension with the largest relative violation.
        used = problem.weights_of(current)
        violations = [
            (used[d] - problem.capacities[d]) / (problem.capacities[d] or 1.0)
            for d in range(problem.num_dimensions)
        ]
        worst_dim = max(range(problem.num_dimensions), key=lambda d: violations[d])
        # Downgrade the group contributing most to that dimension to a lighter item.
        best_group, best_item, best_saving = None, None, 0.0
        for group_index, group_rows in enumerate(rows):
            current_weight = group_rows[current[group_index]][worst_dim]
            for item_index in range(len(group_rows)):
                saving = current_weight - group_rows[item_index][worst_dim]
                if saving > best_saving:
                    best_saving = saving
                    best_group, best_item = group_index, item_index
        if best_group is None:
            break
        current[best_group] = best_item
    if problem.is_feasible(current):
        return MMKPSolution(tuple(current), problem.value_of(current), True)
    return MMKPSolution(None, float("-inf"), False)


def solve_lagrangian(
    problem: MMKPProblem,
    max_iterations: int = 100,
    initial_step: float = 1.0,
) -> LagrangianResult:
    """Run the subgradient method on the Lagrangian dual of ``problem``.

    Parameters
    ----------
    problem:
        The MMKP instance (values are maximised).
    max_iterations:
        Maximum number of subgradient iterations (the paper uses 100).
    initial_step:
        Initial step size; the step decays as ``initial_step / sqrt(k)``.

    Examples
    --------
    >>> from repro.knapsack import MMKPItem, MMKPProblem
    >>> problem = MMKPProblem([2.0], [[MMKPItem(5.0, (2.0,)), MMKPItem(2.0, (1.0,))],
    ...                                [MMKPItem(4.0, (2.0,)), MMKPItem(1.0, (1.0,))]])
    >>> result = solve_lagrangian(problem)
    >>> result.solution.feasible
    True
    """
    if _dense.use_dense_for(problem):
        raw = _dense.solve_one(problem, max_iterations, initial_step)
        return _wrap_dense_result(raw)
    return _solve_lagrangian_pure(problem, max_iterations, initial_step)


def solve_lagrangian_many(
    problems: Sequence[MMKPProblem],
    max_iterations: int = 100,
    initial_step: float = 1.0,
) -> list[LagrangianResult]:
    """Solve many MMKP instances, batching same-shape relaxations.

    With the dense backend enabled, problems whose padded
    ``(groups, max_items, dims)`` shapes match are stacked into one 3-D
    tensor and their subgradient loops run lock-step — a sweep's admission
    solves amortise into a handful of array operations per iteration instead
    of one Python loop nest per problem.  Without it (or without numpy) each
    problem runs through the pure reference solver.  Either way the results
    are bit-identical to calling :func:`solve_lagrangian` per problem, in
    input order.
    """
    problems = list(problems)
    if not problems:
        return []
    if _dense.solver_numpy_enabled():
        raw = _dense.solve_many(problems, max_iterations, initial_step)
        return [_wrap_dense_result(entry) for entry in raw]
    return [
        _solve_lagrangian_pure(problem, max_iterations, initial_step)
        for problem in problems
    ]


def _wrap_dense_result(raw) -> LagrangianResult:
    """Build the public result types from the dense backend's plain tuples."""
    multipliers, dual_bound, (feasible, value, selection), iterations = raw
    solution = MMKPSolution(selection, value, feasible, iterations)
    return LagrangianResult(
        multipliers=multipliers,
        dual_bound=dual_bound,
        solution=solution,
        iterations=iterations,
    )


def _solve_lagrangian_pure(
    problem: MMKPProblem,
    max_iterations: int = 100,
    initial_step: float = 1.0,
) -> LagrangianResult:
    """The pure-Python reference subgradient loop (always available)."""
    multipliers = [0.0] * problem.num_dimensions
    best_dual = float("inf")
    best_multipliers = list(multipliers)
    best_primal = MMKPSolution(None, float("-inf"), False)
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        selection = _relaxed_selection(problem, multipliers)
        used = problem.weights_of(selection)
        relaxed_value = problem.value_of(selection) + sum(
            multiplier * (capacity - weight)
            for multiplier, capacity, weight in zip(
                multipliers, problem.capacities, used
            )
        )
        if relaxed_value < best_dual:
            best_dual = relaxed_value
            best_multipliers = list(multipliers)

        primal = _repair(problem, selection)
        if primal.feasible and primal.value > best_primal.value:
            best_primal = primal

        # Subgradient: capacity violation per dimension.
        subgradient = [
            weight - capacity for weight, capacity in zip(used, problem.capacities)
        ]
        if all(abs(g) < 1e-12 for g in subgradient):
            break
        step = initial_step / (iteration**0.5)
        multipliers = [
            max(0.0, multiplier + step * gradient)
            for multiplier, gradient in zip(multipliers, subgradient)
        ]

    best_primal = MMKPSolution(
        best_primal.selection, best_primal.value, best_primal.feasible, iteration
    )
    return LagrangianResult(
        multipliers=tuple(best_multipliers),
        dual_bound=best_dual,
        solution=best_primal,
        iterations=iteration,
    )
