"""Multiple-choice multi-dimensional knapsack (MMKP) problems and solvers.

The runtime-manager formulation of the paper is an MMKP: every job is a
*group*, every operating point of the job is an *item* with a value (negated
energy) and a weight vector (processing time per resource type), and the
knapsack capacities are the available processing times per resource type.
This package provides the problem container plus three solvers:

* :func:`solve_greedy` — the classic single-aggregate-resource greedy of
  Ykman-Couvreur et al. (used by several prior RM works).
* :func:`solve_lagrangian` — subgradient-based Lagrangian relaxation in the
  style of Wildermann et al.; the multipliers it produces also drive the
  MMKP-LR scheduler baseline.
* :func:`solve_exact` — exact dynamic-programming/branch-and-bound solver for
  small instances, used to validate the heuristics in the test-suite.
"""

from repro.knapsack.mmkp import MMKPItem, MMKPProblem, MMKPSolution
from repro.knapsack.greedy import solve_greedy
from repro.knapsack.lagrangian import (
    LagrangianResult,
    solve_lagrangian,
    solve_lagrangian_many,
)
from repro.knapsack.exact import solve_exact
from repro.knapsack._dense import (
    HAVE_NUMPY,
    set_solver_numpy_enabled,
    solver_numpy_enabled,
    solver_numpy_override,
)

__all__ = [
    "MMKPItem",
    "MMKPProblem",
    "MMKPSolution",
    "solve_greedy",
    "solve_lagrangian",
    "solve_lagrangian_many",
    "LagrangianResult",
    "solve_exact",
    "HAVE_NUMPY",
    "solver_numpy_enabled",
    "set_solver_numpy_enabled",
    "solver_numpy_override",
]
