"""MMKP problem and solution containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class MMKPItem:
    """One item of an MMKP group.

    Parameters
    ----------
    value:
        The profit of selecting this item (maximised).
    weights:
        Resource consumption per knapsack dimension (all non-negative).
    label:
        Optional caller-defined identifier (e.g. a configuration index).
    """

    value: float
    weights: tuple[float, ...]
    label: object = None

    def __post_init__(self) -> None:
        if any(w < 0 for w in self.weights):
            raise SchedulingError(f"item weights must be non-negative: {self.weights}")


class MMKPProblem:
    """A multiple-choice multi-dimensional knapsack problem.

    Exactly one item must be selected from every group; the total weight in
    every dimension must not exceed the corresponding capacity; the total
    value is maximised.

    Examples
    --------
    >>> problem = MMKPProblem(
    ...     capacities=[4.0],
    ...     groups=[
    ...         [MMKPItem(3.0, (2.0,)), MMKPItem(1.0, (1.0,))],
    ...         [MMKPItem(4.0, (3.0,)), MMKPItem(2.0, (1.0,))],
    ...     ],
    ... )
    >>> problem.num_groups, problem.num_dimensions
    (2, 1)
    """

    def __init__(
        self,
        capacities: Iterable[float],
        groups: Sequence[Sequence[MMKPItem]],
    ):
        self._capacities = tuple(float(c) for c in capacities)
        if any(c < 0 for c in self._capacities):
            raise SchedulingError("knapsack capacities must be non-negative")
        if not groups:
            raise SchedulingError("an MMKP needs at least one group")
        self._groups = tuple(tuple(group) for group in groups)
        for index, group in enumerate(self._groups):
            if not group:
                raise SchedulingError(f"group {index} has no items")
            for item in group:
                if len(item.weights) != len(self._capacities):
                    raise SchedulingError(
                        f"item in group {index} has {len(item.weights)} weights, "
                        f"problem has {len(self._capacities)} dimensions"
                    )

    @property
    def capacities(self) -> tuple[float, ...]:
        """Knapsack capacity per dimension."""
        return self._capacities

    @property
    def groups(self) -> tuple[tuple[MMKPItem, ...], ...]:
        """The item groups."""
        return self._groups

    @property
    def num_groups(self) -> int:
        """Number of groups (one item must be picked per group)."""
        return len(self._groups)

    @property
    def num_dimensions(self) -> int:
        """Number of knapsack dimensions."""
        return len(self._capacities)

    def is_feasible(self, selection: Sequence[int]) -> bool:
        """Check a selection (one item index per group) against the capacities."""
        if len(selection) != self.num_groups:
            return False
        for dim in range(self.num_dimensions):
            used = sum(
                self._groups[g][selection[g]].weights[dim]
                for g in range(self.num_groups)
            )
            if used > self._capacities[dim] + 1e-9:
                return False
        return True

    def value_of(self, selection: Sequence[int]) -> float:
        """Total value of a selection."""
        return sum(
            self._groups[g][selection[g]].value for g in range(self.num_groups)
        )

    def weights_of(self, selection: Sequence[int]) -> tuple[float, ...]:
        """Total weight per dimension of a selection."""
        totals = [0.0] * self.num_dimensions
        for group_index, item_index in enumerate(selection):
            item = self._groups[group_index][item_index]
            for dim, weight in enumerate(item.weights):
                totals[dim] += weight
        return tuple(totals)


@dataclass(frozen=True)
class MMKPSolution:
    """Solution of an MMKP instance.

    Attributes
    ----------
    selection:
        One item index per group, or ``None`` if the solver failed to find a
        feasible selection.
    value:
        Total value of the selection (``-inf`` if infeasible).
    feasible:
        Whether the selection satisfies all capacity constraints.
    iterations:
        Solver-specific iteration count (subgradient steps, explored nodes).
    """

    selection: tuple[int, ...] | None
    value: float
    feasible: bool
    iterations: int = 0

    def __bool__(self) -> bool:
        return self.feasible
