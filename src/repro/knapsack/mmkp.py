"""MMKP problem and solution containers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import SchedulingError


@dataclass(frozen=True)
class MMKPItem:
    """One item of an MMKP group.

    Parameters
    ----------
    value:
        The profit of selecting this item (maximised).
    weights:
        Resource consumption per knapsack dimension (all non-negative).
    label:
        Optional caller-defined identifier (e.g. a configuration index).
    """

    value: float
    weights: tuple[float, ...]
    label: object = None

    def __post_init__(self) -> None:
        if any(w < 0 for w in self.weights):
            raise SchedulingError(f"item weights must be non-negative: {self.weights}")


class MMKPProblem:
    """A multiple-choice multi-dimensional knapsack problem.

    Exactly one item must be selected from every group; the total weight in
    every dimension must not exceed the corresponding capacity; the total
    value is maximised.

    Examples
    --------
    >>> problem = MMKPProblem(
    ...     capacities=[4.0],
    ...     groups=[
    ...         [MMKPItem(3.0, (2.0,)), MMKPItem(1.0, (1.0,))],
    ...         [MMKPItem(4.0, (3.0,)), MMKPItem(2.0, (1.0,))],
    ...     ],
    ... )
    >>> problem.num_groups, problem.num_dimensions
    (2, 1)
    """

    def __init__(
        self,
        capacities: Iterable[float],
        groups: Sequence[Sequence[MMKPItem]],
    ):
        self._capacities = tuple(float(c) for c in capacities)
        if any(c < 0 for c in self._capacities):
            raise SchedulingError("knapsack capacities must be non-negative")
        if not groups:
            raise SchedulingError("an MMKP needs at least one group")
        self._groups = tuple(tuple(group) for group in groups)
        for index, group in enumerate(self._groups):
            if not group:
                raise SchedulingError(f"group {index} has no items")
            for item in group:
                if len(item.weights) != len(self._capacities):
                    raise SchedulingError(
                        f"item in group {index} has {len(item.weights)} weights, "
                        f"problem has {len(self._capacities)} dimensions"
                    )
        # Columnar twin of the item groups: the solvers iterate these flat
        # tuples instead of touching MMKPItem attributes per visit.
        self._values = tuple(
            tuple(item.value for item in group) for group in self._groups
        )
        self._rows = tuple(
            tuple(item.weights for item in group) for group in self._groups
        )
        self._labels: tuple[tuple[object, ...], ...] | None = None

    @classmethod
    def from_columns(
        cls,
        capacities: Iterable[float],
        values: Sequence[Sequence[float]],
        weight_rows: Sequence[Sequence[tuple[float, ...]]],
        labels: Sequence[Sequence[object]] | None = None,
    ) -> "MMKPProblem":
        """Build a problem from dense columns, skipping MMKPItem creation.

        ``values[g][i]`` is the profit and ``weight_rows[g][i]`` the weight
        tuple of item ``i`` of group ``g``.  The :class:`MMKPItem` groups are
        materialised lazily on first ``groups`` access, so columnar callers
        (the :class:`~repro.optable.view.ProblemView` group builder) never pay
        for per-item objects.  Validation matches the item constructor:
        non-negative weights, consistent dimensions, no empty group.
        """
        problem = cls.__new__(cls)
        problem._capacities = tuple(float(c) for c in capacities)
        if any(c < 0 for c in problem._capacities):
            raise SchedulingError("knapsack capacities must be non-negative")
        if not values or len(values) != len(weight_rows):
            raise SchedulingError("an MMKP needs at least one group")
        dimension = len(problem._capacities)
        dense_values = []
        dense_rows = []
        for index, (group_values, group_rows) in enumerate(zip(values, weight_rows)):
            if not group_values or len(group_values) != len(group_rows):
                raise SchedulingError(f"group {index} has no items")
            for row in group_rows:
                if len(row) != dimension:
                    raise SchedulingError(
                        f"item in group {index} has {len(row)} weights, "
                        f"problem has {dimension} dimensions"
                    )
                if any(w < 0 for w in row):
                    raise SchedulingError(
                        f"item weights must be non-negative: {tuple(row)}"
                    )
            dense_values.append(tuple(float(v) for v in group_values))
            dense_rows.append(tuple(tuple(float(w) for w in row) for row in group_rows))
        problem._values = tuple(dense_values)
        problem._rows = tuple(dense_rows)
        problem._groups = None
        problem._labels = (
            tuple(tuple(group) for group in labels) if labels is not None else None
        )
        return problem

    @property
    def capacities(self) -> tuple[float, ...]:
        """Knapsack capacity per dimension."""
        return self._capacities

    @property
    def groups(self) -> tuple[tuple[MMKPItem, ...], ...]:
        """The item groups (materialised lazily for columnar problems)."""
        if self._groups is None:
            labels = self._labels
            self._groups = tuple(
                tuple(
                    MMKPItem(
                        value,
                        row,
                        labels[g][i] if labels is not None else None,
                    )
                    for i, (value, row) in enumerate(zip(group_values, group_rows))
                )
                for g, (group_values, group_rows) in enumerate(
                    zip(self._values, self._rows)
                )
            )
        return self._groups

    @property
    def dense_values(self) -> tuple[tuple[float, ...], ...]:
        """Per-group item values as flat tuples (solver fast path)."""
        return self._values

    @property
    def dense_rows(self) -> tuple[tuple[tuple[float, ...], ...], ...]:
        """Per-group item weight tuples as flat tuples (solver fast path)."""
        return self._rows

    @property
    def num_groups(self) -> int:
        """Number of groups (one item must be picked per group)."""
        return len(self._values)

    @property
    def num_dimensions(self) -> int:
        """Number of knapsack dimensions."""
        return len(self._capacities)

    def is_feasible(self, selection: Sequence[int]) -> bool:
        """Check a selection (one item index per group) against the capacities."""
        rows = self._rows
        num_groups = len(rows)
        if len(selection) != num_groups:
            return False
        capacities = self._capacities
        for dim in range(len(capacities)):
            used = sum(rows[g][selection[g]][dim] for g in range(num_groups))
            if used > capacities[dim] + 1e-9:
                return False
        return True

    def value_of(self, selection: Sequence[int]) -> float:
        """Total value of a selection."""
        values = self._values
        return sum(values[g][selection[g]] for g in range(len(values)))

    def weights_of(self, selection: Sequence[int]) -> tuple[float, ...]:
        """Total weight per dimension of a selection."""
        totals = [0.0] * self.num_dimensions
        rows = self._rows
        for group_index, item_index in enumerate(selection):
            for dim, weight in enumerate(rows[group_index][item_index]):
                totals[dim] += weight
        return tuple(totals)


@dataclass(frozen=True)
class MMKPSolution:
    """Solution of an MMKP instance.

    Attributes
    ----------
    selection:
        One item index per group, or ``None`` if the solver failed to find a
        feasible selection.
    value:
        Total value of the selection (``-inf`` if infeasible).
    feasible:
        Whether the selection satisfies all capacity constraints.
    iterations:
        Solver-specific iteration count (subgradient steps, explored nodes).
    """

    selection: tuple[int, ...] | None
    value: float
    feasible: bool
    iterations: int = 0

    def __bool__(self) -> bool:
        return self.feasible
