"""Plain-text renderings of the paper's tables and figures.

The benchmark harness prints these so the regenerated rows/series can be
compared side by side with the numbers reported in the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.experiments import SuiteResults
from repro.analysis.stats import BoxplotStats
from repro.workload.suite import EvaluationSuite
from repro.workload.testgen import DeadlineLevel


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def format_table_iii(suite: EvaluationSuite) -> str:
    """Render the test-case census in the layout of Table III."""
    census = suite.census()
    job_counts = sorted({jobs for _, jobs in census})
    lines = ["Table III: number of test cases per deadline level and job count"]
    header = ["Deadline"] + [f"{jobs} job(s)" for jobs in job_counts] + ["total"]
    widths = [10] + [9] * len(job_counts) + [7]
    lines.append(_format_row(header, widths))
    for level in (DeadlineLevel.WEAK, DeadlineLevel.TIGHT):
        row = [level.value]
        total = 0
        for jobs in job_counts:
            count = census.get((level, jobs), 0)
            total += count
            row.append(str(count))
        row.append(str(total))
        lines.append(_format_row(row, widths))
    lines.append(f"total test cases: {len(suite)}")
    return "\n".join(lines)


def format_fig2_scheduling_rate(
    results: SuiteResults,
    schedulers: Sequence[str],
    deadline_level: DeadlineLevel = DeadlineLevel.TIGHT,
) -> str:
    """Render the scheduling success rates of Fig. 2."""
    job_counts = results.job_counts()
    lines = [
        f"Fig. 2: scheduling rate [%] for {deadline_level.value} deadlines"
    ]
    widths = [12] + [9] * len(job_counts)
    lines.append(_format_row(["scheduler"] + [f"{j} job(s)" for j in job_counts], widths))
    for scheduler in schedulers:
        rates = results.scheduling_rate(scheduler, deadline_level)
        row = [scheduler] + [f"{rates.get(j, float('nan')):.1f}" for j in job_counts]
        lines.append(_format_row(row, widths))
    return "\n".join(lines)


def format_table_iv(
    results: SuiteResults, schedulers: Sequence[str], reference: str
) -> str:
    """Render the geometric-mean relative energy table (Table IV)."""
    table = results.relative_energy_table(schedulers, reference)
    job_counts = results.job_counts()
    lines = [f"Table IV: geometric mean of energy relative to {reference}"]
    header = ["# Jobs"]
    for scheduler in schedulers:
        header += [f"{scheduler}/weak", f"{scheduler}/tight"]
    widths = [7] + [max(14, len(h)) for h in header[1:]]
    lines.append(_format_row(header, widths))

    def cell(scheduler: str, level: DeadlineLevel, jobs: int) -> str:
        value = table[scheduler].get((level, jobs))
        return f"{value:.4f}" if value is not None and value == value else "-"

    for jobs in job_counts:
        row = [str(jobs)]
        for scheduler in schedulers:
            row += [
                cell(scheduler, DeadlineLevel.WEAK, jobs),
                cell(scheduler, DeadlineLevel.TIGHT, jobs),
            ]
        lines.append(_format_row(row, widths))
    row = ["Overall"]
    for scheduler in schedulers:
        row += [
            cell(scheduler, DeadlineLevel.WEAK, 0),
            cell(scheduler, DeadlineLevel.TIGHT, 0),
        ]
    lines.append(_format_row(row, widths))
    row = ["All"]
    for scheduler in schedulers:
        value = table[scheduler].get((None, 0))
        rendered = f"{value:.4f}" if value is not None and value == value else "-"
        row += [rendered, ""]
    lines.append(_format_row(row, widths))
    return "\n".join(lines)


def format_fig3_scurve(
    results: SuiteResults,
    schedulers: Sequence[str],
    reference: str,
    num_points: int = 10,
) -> str:
    """Render a down-sampled view of the Fig. 3 S-curves."""
    lines = [f"Fig. 3: S-curves of energy relative to {reference} (sampled)"]
    for scheduler in schedulers:
        curve = results.relative_energy_curve(scheduler, reference)
        optimal = results.optimal_share(scheduler, reference)
        if not curve:
            lines.append(f"{scheduler}: no commonly scheduled tests")
            continue
        step = max(1, len(curve) // num_points)
        samples = [f"{curve[i]:.3f}" for i in range(0, len(curve), step)]
        lines.append(
            f"{scheduler}: n={len(curve)}, optimal share={optimal * 100:.1f}%, "
            f"curve={samples}"
        )
    return "\n".join(lines)


def format_schedule_gantt(
    schedule, tables, width: int = 60
) -> str:
    """Render a schedule as a textual Gantt chart (one row per job).

    This is the textual analogue of Fig. 1 of the paper: time runs left to
    right, every row is one job, and each character cell shows the
    configuration index the job uses during that slice (``.`` = suspended).
    """
    if not schedule:
        return "(empty schedule)"
    start, end = schedule.start, schedule.end
    span = max(end - start, 1e-9)
    job_names = sorted(schedule.job_names())
    lines = [f"Gantt [{start:.2f} s .. {end:.2f} s], one column = {span / width:.3f} s"]
    for job_name in job_names:
        cells = []
        for column in range(width):
            time = start + (column + 0.5) * span / width
            symbol = "."
            for segment in schedule:
                if segment.start <= time < segment.end:
                    mapping = segment.mapping_for(job_name)
                    if mapping is not None:
                        symbol = str(mapping.config_index % 10)
                    break
            cells.append(symbol)
        lines.append(f"{job_name:>12s} |{''.join(cells)}|")
    return "\n".join(lines)


def format_energy_breakdown(
    clusters: Mapping[str, Mapping[str, float]], title: str = "energy breakdown"
) -> str:
    """Render a per-cluster busy/idle/total energy table.

    ``clusters`` maps cluster (processor-type) names to ``{"busy": J,
    "idle": J, "total": J}`` entries as produced by
    :meth:`~repro.energy.accounting.EnergyMeter.cluster_breakdown` or
    :meth:`~repro.service.pool.BatchResults.cluster_energy`.  In table-mode
    accounting the busy/idle split is not observable, so idle reads zero and
    the totals carry the attribution.
    """
    if not clusters:
        return f"{title}: no cluster data (bare capacity vector?)"
    total = sum(entry["total"] for entry in clusters.values())
    lines = [f"{title} [total {total:.3f} J]"]
    widths = [10, 12, 12, 12, 8]
    lines.append(
        _format_row(["cluster", "busy [J]", "idle [J]", "total [J]", "share"], widths)
    )
    for name in sorted(clusters):
        entry = clusters[name]
        share = entry["total"] / total if total > 0 else 0.0
        lines.append(
            _format_row(
                [
                    name,
                    f"{entry['busy']:.3f}",
                    f"{entry['idle']:.3f}",
                    f"{entry['total']:.3f}",
                    f"{share * 100:.1f}%",
                ],
                widths,
            )
        )
    return "\n".join(lines)


def format_fig4_search_time(
    results: SuiteResults, schedulers: Sequence[str]
) -> str:
    """Render the search-time summary of Fig. 4."""
    lines = ["Fig. 4: scheduling overhead per job count [seconds]"]
    widths = [12, 7, 12, 12, 12, 12]
    lines.append(
        _format_row(
            ["scheduler", "#jobs", "median", "mean", "q3", "max"], widths
        )
    )
    for scheduler in schedulers:
        stats: Mapping[int, BoxplotStats] = results.search_time_stats(scheduler)
        for num_jobs, stat in stats.items():
            lines.append(
                _format_row(
                    [
                        scheduler,
                        str(num_jobs),
                        f"{stat.median:.6f}",
                        f"{stat.mean:.6f}",
                        f"{stat.q3:.6f}",
                        f"{stat.maximum:.6f}",
                    ],
                    widths,
                )
            )
    return "\n".join(lines)
