"""Run schedulers over an evaluation suite and derive the paper's metrics.

One call to :func:`evaluate_suite` executes every scheduler on every test case
once and stores the raw outcomes.  All figures and tables of the paper's
evaluation section are pure post-processing of those outcomes:

* Fig. 2 — :meth:`SuiteResults.scheduling_rate`
* Table IV — :meth:`SuiteResults.relative_energy_table`
* Fig. 3 — :meth:`SuiteResults.relative_energy_curve`
* Fig. 4 — :meth:`SuiteResults.search_time_stats`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.stats import BoxplotStats, geometric_mean, s_curve
from repro.core.config import ConfigTable
from repro.exceptions import SchedulingError
from repro.platforms.platform import Platform
from repro.platforms.resources import ResourceVector
from repro.schedulers.base import Scheduler
from repro.workload.suite import EvaluationSuite
from repro.workload.testgen import DeadlineLevel, TestCase


@dataclass(frozen=True)
class SchedulerRun:
    """Outcome of one scheduler on one test case.

    Attributes
    ----------
    case_name:
        Name of the test case.
    num_jobs:
        Number of jobs in the test case.
    deadline_level:
        Deadline tightness of the test case.  ``None`` for runs derived from
        online traces (see
        :meth:`repro.service.pool.BatchResults.to_scheduler_runs`), which
        have no generator deadline level.
    scheduler:
        Name of the scheduler.
    feasible:
        Whether the scheduler found a schedule.
    energy:
        Energy of the schedule (``inf`` if rejected).
    search_time:
        Wall-clock scheduling overhead in seconds.
    """

    case_name: str
    num_jobs: int
    deadline_level: DeadlineLevel | None
    scheduler: str
    feasible: bool
    energy: float
    search_time: float


class SuiteResults:
    """Raw scheduler runs plus the derived paper metrics."""

    def __init__(self, runs: Iterable[SchedulerRun]):
        self._runs = tuple(runs)
        self._by_scheduler: dict[str, dict[str, SchedulerRun]] = {}
        for run in self._runs:
            self._by_scheduler.setdefault(run.scheduler, {})[run.case_name] = run

    # ------------------------------------------------------------------ #
    # Raw access
    # ------------------------------------------------------------------ #
    @property
    def runs(self) -> tuple[SchedulerRun, ...]:
        """All recorded runs."""
        return self._runs

    @property
    def schedulers(self) -> list[str]:
        """Names of the schedulers that were evaluated."""
        return sorted(self._by_scheduler)

    def runs_of(self, scheduler: str) -> list[SchedulerRun]:
        """All runs of one scheduler."""
        if scheduler not in self._by_scheduler:
            raise SchedulingError(
                f"no runs recorded for scheduler {scheduler!r}; "
                f"known: {self.schedulers}"
            )
        return list(self._by_scheduler[scheduler].values())

    def job_counts(self) -> list[int]:
        """The distinct job counts appearing in the suite."""
        return sorted({run.num_jobs for run in self._runs})

    # ------------------------------------------------------------------ #
    # Fig. 2 — scheduling success rate
    # ------------------------------------------------------------------ #
    def scheduling_rate(
        self,
        scheduler: str,
        deadline_level: DeadlineLevel | None = DeadlineLevel.TIGHT,
    ) -> dict[int, float]:
        """Percentage of feasible test cases per job count (Fig. 2).

        The paper's figure is restricted to tight deadlines (weak deadlines
        are trivially schedulable by every algorithm); pass ``None`` to
        aggregate over both levels.
        """
        per_jobs: dict[int, list[SchedulerRun]] = {}
        for run in self.runs_of(scheduler):
            if deadline_level is not None and run.deadline_level is not deadline_level:
                continue
            per_jobs.setdefault(run.num_jobs, []).append(run)
        return {
            num_jobs: 100.0 * sum(r.feasible for r in runs) / len(runs)
            for num_jobs, runs in sorted(per_jobs.items())
        }

    # ------------------------------------------------------------------ #
    # Table IV / Fig. 3 — relative energy w.r.t. a reference scheduler
    # ------------------------------------------------------------------ #
    def relative_energies(
        self, scheduler: str, reference: str
    ) -> list[tuple[SchedulerRun, float]]:
        """Per-test energy ratios scheduler/reference.

        Only test cases where both the scheduler and the reference found a
        schedule contribute (this is how the paper computes Table IV).
        """
        reference_runs = self._by_scheduler.get(reference, {})
        if not reference_runs:
            raise SchedulingError(f"no runs recorded for reference {reference!r}")
        ratios = []
        for run in self.runs_of(scheduler):
            ref = reference_runs.get(run.case_name)
            if ref is None or not ref.feasible or not run.feasible:
                continue
            if ref.energy <= 0:
                continue
            ratios.append((run, run.energy / ref.energy))
        return ratios

    def relative_energy_table(
        self, schedulers: Sequence[str], reference: str
    ) -> dict[str, dict[tuple[DeadlineLevel, int], float]]:
        """Geometric-mean relative energy per (deadline level, job count) bucket.

        This is the body of Table IV.  Two synthetic buckets are added per
        scheduler: ``(level, 0)`` aggregates over all job counts of a level
        ("Overall" row) and the key ``(None, 0)`` aggregates over everything
        ("all levels" row).
        """
        table: dict[str, dict[tuple[DeadlineLevel, int], float]] = {}
        for scheduler in schedulers:
            ratios = self.relative_energies(scheduler, reference)
            buckets: dict[tuple[DeadlineLevel, int], list[float]] = {}
            for run, ratio in ratios:
                buckets.setdefault((run.deadline_level, run.num_jobs), []).append(ratio)
                buckets.setdefault((run.deadline_level, 0), []).append(ratio)
                buckets.setdefault((None, 0), []).append(ratio)
            table[scheduler] = {
                key: geometric_mean(values) for key, values in buckets.items()
            }
        return table

    def relative_energy_curve(self, scheduler: str, reference: str) -> list[float]:
        """Sorted per-test relative energies — one S-curve of Fig. 3."""
        return s_curve(ratio for _, ratio in self.relative_energies(scheduler, reference))

    def optimal_share(self, scheduler: str, reference: str, tolerance: float = 1e-6) -> float:
        """Fraction of scheduled tests where the scheduler matches the reference energy."""
        ratios = [ratio for _, ratio in self.relative_energies(scheduler, reference)]
        if not ratios:
            return float("nan")
        return sum(1 for r in ratios if r <= 1.0 + tolerance) / len(ratios)

    # ------------------------------------------------------------------ #
    # Fig. 4 — search time
    # ------------------------------------------------------------------ #
    def search_time_stats(self, scheduler: str) -> dict[int, BoxplotStats]:
        """Box-plot statistics of the scheduling overhead per job count."""
        per_jobs: dict[int, list[float]] = {}
        for run in self.runs_of(scheduler):
            per_jobs.setdefault(run.num_jobs, []).append(run.search_time)
        return {
            num_jobs: BoxplotStats.from_samples(samples)
            for num_jobs, samples in sorted(per_jobs.items())
        }


def evaluate_suite(
    suite: EvaluationSuite,
    capacity: ResourceVector | Platform,
    tables: Mapping[str, ConfigTable],
    schedulers: Sequence[Scheduler],
    batch_admissions: bool = False,
) -> SuiteResults:
    """Run every scheduler on every test case of the suite.

    Parameters
    ----------
    suite:
        The evaluation suite (test cases).
    capacity:
        Platform (or capacity vector) the jobs are mapped onto.
    tables:
        Application configuration tables; every application referenced by the
        suite must be present.
    schedulers:
        The scheduling algorithms to compare.
    batch_admissions:
        Hand each scheduler that implements ``schedule_many`` (MMKP-LR) the
        whole suite at once, so a sweep's admission relaxations amortise
        into stacked solves.  Schedules, energies and feasibility are
        bit-identical to the sequential default; per-case ``search_time``
        becomes each case's equal share of the batch wall time, which is why
        the paper's Fig. 4 search-time reproduction keeps the default off.

    Returns
    -------
    SuiteResults
        The raw runs, ready for the Table IV / Fig. 2-4 post-processing.
    """
    cases = list(suite)
    problems = [case.problem(capacity, tables) for case in cases]
    runs: list[SchedulerRun] = []
    for scheduler in schedulers:
        if batch_admissions and hasattr(scheduler, "schedule_many"):
            results = scheduler.schedule_many(problems)
        else:
            results = [scheduler.schedule(problem) for problem in problems]
        for case, result in zip(cases, results):
            runs.append(
                SchedulerRun(
                    case_name=case.name,
                    num_jobs=case.num_jobs,
                    deadline_level=case.deadline_level,
                    scheduler=scheduler.name,
                    feasible=result.feasible,
                    energy=result.energy,
                    search_time=result.search_time,
                )
            )
    return SuiteResults(runs)
