"""Experiment harness and statistics for the paper's evaluation.

* :mod:`repro.analysis.stats` — geometric means, box-plot statistics,
  S-curves.
* :mod:`repro.analysis.experiments` — runs the schedulers over an evaluation
  suite and derives the data behind Fig. 2 (scheduling rate), Table IV and
  Fig. 3 (relative energy) and Fig. 4 (search time).
* :mod:`repro.analysis.report` — plain-text renderings of the tables/figures
  (the benchmark harness prints these).
"""

from repro.analysis.stats import BoxplotStats, geometric_mean, s_curve
from repro.analysis.experiments import (
    SchedulerRun,
    SuiteResults,
    evaluate_suite,
)
from repro.analysis.report import (
    format_energy_breakdown,
    format_fig2_scheduling_rate,
    format_fig3_scurve,
    format_fig4_search_time,
    format_schedule_gantt,
    format_table_iii,
    format_table_iv,
)
from repro.analysis.export import write_runs_csv, write_schedule_csv, write_scurve_csv

__all__ = [
    "geometric_mean",
    "s_curve",
    "BoxplotStats",
    "SchedulerRun",
    "SuiteResults",
    "evaluate_suite",
    "format_energy_breakdown",
    "format_table_iii",
    "format_table_iv",
    "format_fig2_scheduling_rate",
    "format_fig3_scurve",
    "format_fig4_search_time",
    "format_schedule_gantt",
    "write_runs_csv",
    "write_scurve_csv",
    "write_schedule_csv",
]
