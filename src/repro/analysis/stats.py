"""Statistics helpers used by the experiment harness.

Only plain-Python/numpy statistics are needed: the geometric mean for
Table IV, box-plot summaries for the search-time figure and sorted relative
energies ("S-curves") for Fig. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Returns ``nan`` for an empty input (no successfully scheduled tests in a
    bucket) so that report code can render a dash instead of crashing.

    Examples
    --------
    >>> round(geometric_mean([1.0, 4.0]), 3)
    2.0
    """
    values = [float(v) for v in values]
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def s_curve(values: Iterable[float]) -> list[float]:
    """Values sorted ascending — the S-curve representation of Fig. 3."""
    return sorted(float(v) for v in values)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return float("nan")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    weight = position - lower
    low, high = sorted_values[lower], sorted_values[upper]
    if weight == 0.0 or low == high:
        # Short-circuit keeps the result exact (and monotone) even for
        # values whose scaled sum underflows, e.g. denormal floats where
        # ``x * 0.5 + x * 0.5`` rounds to 0 < x.
        return low
    return low + (high - low) * weight


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number summary plus mean, as plotted in Fig. 4.

    Attributes
    ----------
    minimum, q1, median, q3, maximum:
        Five-number summary of the sample.
    mean:
        Arithmetic mean.
    count:
        Sample size.
    """

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "BoxplotStats":
        """Compute the summary of a sample set (must be non-empty)."""
        data = sorted(float(s) for s in samples)
        if not data:
            raise ValueError("boxplot statistics require at least one sample")
        return cls(
            minimum=data[0],
            q1=percentile(data, 0.25),
            median=percentile(data, 0.50),
            q3=percentile(data, 0.75),
            maximum=data[-1],
            mean=sum(data) / len(data),
            count=len(data),
        )
