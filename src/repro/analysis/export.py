"""CSV export of experiment results and schedules.

The text reports in :mod:`repro.analysis.report` are meant for eyeballing;
this module writes the same data as plain CSV so results can be post-processed
with pandas/spreadsheets or plotted externally (the paper's figures are plots
of exactly these series).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.experiments import SuiteResults
from repro.core.config import ConfigTable
from repro.core.segment import Schedule


def write_runs_csv(results: SuiteResults, path: str | Path) -> int:
    """Write one row per (test case, scheduler) run; returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["case", "num_jobs", "deadline_level", "scheduler", "feasible", "energy", "search_time"]
        )
        for run in results.runs:
            writer.writerow(
                [
                    run.case_name,
                    run.num_jobs,
                    # Runs bridged from online batches carry no deadline level.
                    "" if run.deadline_level is None else run.deadline_level.value,
                    run.scheduler,
                    int(run.feasible),
                    "" if run.energy == float("inf") else f"{run.energy:.6f}",
                    f"{run.search_time:.9f}",
                ]
            )
    return len(results.runs)


def write_scurve_csv(
    results: SuiteResults,
    schedulers: Sequence[str],
    reference: str,
    path: str | Path,
) -> int:
    """Write the Fig. 3 S-curves (one column per scheduler); returns the row count."""
    curves = {
        scheduler: results.relative_energy_curve(scheduler, reference)
        for scheduler in schedulers
    }
    length = max((len(curve) for curve in curves.values()), default=0)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rank"] + list(schedulers))
        for index in range(length):
            row = [index]
            for scheduler in schedulers:
                curve = curves[scheduler]
                row.append(f"{curve[index]:.6f}" if index < len(curve) else "")
            writer.writerow(row)
    return length


def write_schedule_csv(
    schedule: Schedule, tables: Mapping[str, ConfigTable], path: str | Path
) -> int:
    """Write one row per (segment, job mapping); returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["segment", "start", "end", "job", "application", "config", "little", "big_etc", "segment_energy"]
        )
        for index, segment in enumerate(schedule):
            energy = segment.energy(tables)
            for mapping in segment:
                point = mapping.operating_point(tables)
                resources = list(point.resources)
                writer.writerow(
                    [
                        index,
                        f"{segment.start:.6f}",
                        f"{segment.end:.6f}",
                        mapping.job_name,
                        mapping.application,
                        mapping.config_index,
                        resources[0] if resources else "",
                        ";".join(str(r) for r in resources[1:]),
                        f"{energy:.6f}",
                    ]
                )
                rows += 1
    return rows
