"""MMKP-MDF — the mapping heuristic proposed by the paper (Algorithm 1).

The multi-application mapping problem is treated as a multiple-choice
multi-dimensional knapsack problem: core types are knapsacks whose capacity is
*processing time per type* (cores × analysis horizon), job configurations are
items whose weight is the processing time they consume, and the value is the
(negated) energy.  The heuristic assigns one configuration per job:

1. Select the next job with the *Maximum Difference First* policy — the job
   that would be penalised most if its best feasible configuration were not
   available.
2. Try that job's feasible configurations in non-decreasing energy order; each
   tentative assignment is validated by building the actual mapping segments
   with the EDF packer (Algorithm 2).
3. On success, commit the assignment, keep the packed schedule and charge the
   consumed processing time to the knapsack containers.

If a job ends up with no configuration that yields a feasible packing, the
whole request set is rejected.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.kernel.runtime import kernel_enabled
from repro.optable.runtime import columnar_enabled
from repro.schedulers.base import Scheduler, SchedulingResult
from repro.schedulers.edf_packer import pack_jobs_edf
from repro.schedulers.policies import JobSelectionPolicy, MaximumDifferencePolicy

#: Numerical slack for capacity/deadline filtering.
_EPSILON = 1e-9


class MMKPMDFScheduler(Scheduler):
    """The paper's MMKP-MDF heuristic.

    Parameters
    ----------
    policy:
        Job-selection policy; defaults to the paper's MDF.  Alternative
        policies exist purely for the ablation benchmarks.

    Examples
    --------
    >>> from repro.workload.motivational import motivational_problem
    >>> result = MMKPMDFScheduler().schedule(motivational_problem("S1"))
    >>> result.feasible
    True
    """

    name = "mmkp-mdf"

    def __init__(self, policy: JobSelectionPolicy | None = None):
        self._policy = policy if policy is not None else MaximumDifferencePolicy()

    @property
    def policy(self) -> JobSelectionPolicy:
        """The job-selection policy in use."""
        return self._policy

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        if columnar_enabled():
            return self._solve_columnar(problem)
        return self._solve_lists(problem)

    def _solve_columnar(self, problem: SchedulingProblem) -> SchedulingResult:
        """Algorithm 1 on the shared columnar :class:`ProblemView`.

        Identical decision sequence (and floats) as :meth:`_solve_lists`; the
        feasibility filter, the energy ordering and the container bookkeeping
        read the interned OpTable columns instead of walking
        ``list[OperatingPoint]`` per round.
        """
        view = problem.view()
        containers = problem.processing_capacity()
        assignment: dict[str, int] = {}
        schedule = None
        packer_calls = 0
        policy_calls = 0

        # Deadlines and remaining ratios are fixed for the whole activation,
        # so the time-feasibility half of NEXTJOBMDF step (i) is computed once
        # per job; only the container check repeats per round (the containers
        # shrink as configurations are committed).
        dimensions = len(containers)
        time_feasible: dict[str, list[tuple[int, float, tuple[int, ...]]]] = {}
        for job in problem.jobs:
            table = view.optable(job.application)
            budget = job.deadline - view.now
            ratio = job.remaining_ratio
            times = table.times
            resources = table.resources
            entries = []
            for index in range(len(times)):
                remaining = times[index] * ratio
                if remaining <= budget + _EPSILON:
                    entries.append((index, remaining, resources[index]))
            time_feasible[job.name] = entries

        if kernel_enabled():
            return self._solve_columnar_kernel(
                problem, view, containers, time_feasible
            )

        def feasible_now(job: Job) -> list[int]:
            feasible = []
            for index, remaining, row in time_feasible[job.name]:
                fits = True
                for k in range(dimensions):
                    if row[k] * remaining > containers[k] + _EPSILON:
                        fits = False
                        break
                if fits:
                    feasible.append(index)
            return feasible

        unassigned = {job.name for job in problem.jobs}
        while unassigned:
            candidates = [
                (job, feasible_now(job))
                for job in problem.jobs
                if job.name in unassigned
            ]
            policy_calls += 1
            job, config_indices = self._policy.select(
                candidates, problem.tables, problem.now
            )

            # Try configurations in non-decreasing remaining-energy order
            # (Algorithm 1, lines 5-14).  ``remaining_energy = energy * ratio``,
            # evaluated on the energy column with the same float ops as the
            # seed's key function.
            table = view.optable(job.application)
            energies = table.energies
            ratio = job.remaining_ratio
            ordered = sorted(config_indices, key=lambda i: energies[i] * ratio)
            committed = False
            for config_index in ordered:
                trial = dict(assignment)
                trial[job.name] = config_index
                packer_calls += 1
                trial_schedule = pack_jobs_edf(problem, trial)
                if trial_schedule is None:
                    continue
                assignment = trial
                schedule = trial_schedule
                # Charge the committed configuration to the containers
                # (Algorithm 1, line 12).
                remaining = table.times[config_index] * ratio
                row = table.resources[config_index]
                for k in range(len(containers)):
                    containers[k] -= row[k] * remaining
                committed = True
                break

            if not committed:
                # No configuration of this job yields a feasible packing: the
                # request set is rejected (Algorithm 1, line 6).
                return SchedulingResult(
                    schedule=None,
                    statistics={
                        "packer_calls": packer_calls,
                        "policy_calls": policy_calls,
                    },
                )
            unassigned.remove(job.name)

        energy = problem.energy_of(schedule) if schedule is not None else float("inf")
        return SchedulingResult(
            schedule=schedule,
            assignment=assignment,
            energy=energy,
            statistics={"packer_calls": packer_calls, "policy_calls": policy_calls},
        )

    def _solve_columnar_kernel(
        self,
        problem: SchedulingProblem,
        view,
        containers: list[float],
        time_feasible: dict[str, list[tuple[int, float, tuple[int, ...]]]],
    ) -> SchedulingResult:
        """Algorithm 1 on the incremental kernel (``REPRO_KERNEL=1``).

        Produces the exact decision sequence (and floats) of
        :meth:`_solve_columnar` while avoiding its per-round rescans:

        * The per-entry container demand ``row[k] * remaining`` is a constant
          of the activation and is materialised once.
        * Containers only shrink as configurations commit, so feasibility is
          *monotone*: an entry that failed a round can never pass a later
          one.  Each job keeps its surviving entries plus their per-type
          maximum demand; a round whose containers still cover that maximum
          reuses the previous feasible set without scanning at all (every
          comparison that does run is the seed comparison on the same
          floats, so the feasible sets are identical).
        * With the paper's MDF policy, a job's selection priority depends
          only on its feasible set; it is recomputed only when that set
          shrank.  The inlined selection replays the policy's exact
          arithmetic and the seed's ``max((priority, name))`` tie-break.

        The EDF packer underneath resumes from shared placement prefixes
        (see :func:`repro.kernel.packmemo`), which is where the bulk of the
        arrival-handling speedup comes from.
        """
        dimensions = len(containers)
        epsilon = _EPSILON
        assignment: dict[str, int] = {}
        schedule = None
        packer_calls = 0
        policy_calls = 0

        #: name → [entries, max_demand, feasible_indices, cached_priority]
        records: dict[str, list] = {}
        for job in problem.jobs:
            entries = [
                (index, tuple(row[k] * remaining for k in range(dimensions)))
                for index, remaining, row in time_feasible[job.name]
            ]
            records[job.name] = [
                entries,
                [
                    max((entry[1][k] for entry in entries), default=0.0)
                    for k in range(dimensions)
                ],
                [entry[0] for entry in entries],
                None,
            ]

        def feasible_now(name: str) -> tuple[list[int], bool]:
            """The job's feasible indices plus whether the set just shrank."""
            rec = records[name]
            max_demand = rec[1]
            for k in range(dimensions):
                if max_demand[k] > containers[k] + epsilon:
                    break
            else:
                return rec[2], False
            survivors = []
            for entry in rec[0]:
                demand = entry[1]
                fits = True
                for k in range(dimensions):
                    if demand[k] > containers[k] + epsilon:
                        fits = False
                        break
                if fits:
                    survivors.append(entry)
            rec[0] = survivors
            rec[1] = [
                max((entry[1][k] for entry in survivors), default=0.0)
                for k in range(dimensions)
            ]
            rec[2] = [entry[0] for entry in survivors]
            rec[3] = None
            return rec[2], True

        inline_mdf = type(self._policy) is MaximumDifferencePolicy
        unassigned = {job.name for job in problem.jobs}
        while unassigned:
            policy_calls += 1
            if inline_mdf:
                # Inlined MDF selection with cached priorities.  Matches the
                # policy exactly: the first candidate (in problem.jobs
                # order) with no feasible configuration is hopeless and
                # selected immediately; otherwise the maximum of
                # ``(priority, name)`` wins — identical to the seed's
                # ``max(candidates, key=...)`` because names are unique.
                job = None
                config_indices: list[int] = []
                best_key = None
                for candidate in problem.jobs:
                    name = candidate.name
                    if name not in unassigned:
                        continue
                    indices, shrank = feasible_now(name)
                    if not indices:
                        job, config_indices = candidate, indices
                        break
                    rec = records[name]
                    priority = rec[3]
                    if shrank or priority is None:
                        # The policy's columnar priority: difference of the
                        # two smallest remaining energies (same floats).
                        if len(indices) == 1:
                            priority = float("inf")
                        else:
                            energies = view.optable(candidate.application).energies
                            ratio = candidate.remaining_ratio
                            smallest = second = float("inf")
                            for index in indices:
                                value = energies[index] * ratio
                                if value < smallest:
                                    smallest, second = value, smallest
                                elif value < second:
                                    second = value
                            priority = second - smallest
                        rec[3] = priority
                    key = (priority, name)
                    if best_key is None or key > best_key:
                        best_key = key
                        job, config_indices = candidate, indices
            else:
                candidates = [
                    (candidate, feasible_now(candidate.name)[0])
                    for candidate in problem.jobs
                    if candidate.name in unassigned
                ]
                job, config_indices = self._policy.select(
                    candidates, problem.tables, problem.now
                )

            # Try configurations in non-decreasing remaining-energy order
            # (Algorithm 1, lines 5-14) — identical to the seed loop; the
            # packer underneath resumes from shared placement prefixes.
            table = view.optable(job.application)
            energies = table.energies
            ratio = job.remaining_ratio
            ordered = sorted(config_indices, key=lambda i: energies[i] * ratio)
            committed = False
            for config_index in ordered:
                # The seed copies the assignment per trial; mutating in
                # place (and undoing on rejection) hands the packer the
                # identical mapping without the per-trial dict churn.
                assignment[job.name] = config_index
                packer_calls += 1
                trial_schedule = pack_jobs_edf(problem, assignment)
                if trial_schedule is None:
                    continue
                schedule = trial_schedule
                # Charge the committed configuration to the containers
                # (Algorithm 1, line 12).
                remaining = table.times[config_index] * ratio
                row = table.resources[config_index]
                for k in range(len(containers)):
                    containers[k] -= row[k] * remaining
                committed = True
                break

            if not committed:
                assignment.pop(job.name, None)
                return SchedulingResult(
                    schedule=None,
                    statistics={
                        "packer_calls": packer_calls,
                        "policy_calls": policy_calls,
                    },
                )
            unassigned.remove(job.name)

        energy = problem.energy_of(schedule) if schedule is not None else float("inf")
        return SchedulingResult(
            schedule=schedule,
            assignment=assignment,
            energy=energy,
            statistics={"packer_calls": packer_calls, "policy_calls": policy_calls},
        )

    def _solve_lists(self, problem: SchedulingProblem) -> SchedulingResult:
        """The seed list-based Algorithm 1 (kept for equivalence/benchmarks)."""
        containers = problem.processing_capacity()
        assignment: dict[str, int] = {}
        schedule = None
        packer_calls = 0
        policy_calls = 0

        unassigned = {job.name for job in problem.jobs}
        while unassigned:
            candidates = [
                (job, self._feasible_configs(job, problem, containers))
                for job in problem.jobs
                if job.name in unassigned
            ]
            policy_calls += 1
            job, config_indices = self._policy.select(
                candidates, problem.tables, problem.now
            )

            # Try configurations in non-decreasing remaining-energy order
            # (Algorithm 1, lines 5-14).
            table = problem.table_for(job)
            ordered = sorted(
                config_indices,
                key=lambda i: table[i].remaining_energy(job.remaining_ratio),
            )
            committed = False
            for config_index in ordered:
                trial = dict(assignment)
                trial[job.name] = config_index
                packer_calls += 1
                trial_schedule = pack_jobs_edf(problem, trial)
                if trial_schedule is None:
                    continue
                assignment = trial
                schedule = trial_schedule
                self._consume(containers, table, config_index, job)
                committed = True
                break

            if not committed:
                # No configuration of this job yields a feasible packing: the
                # request set is rejected (Algorithm 1, line 6).
                return SchedulingResult(
                    schedule=None,
                    statistics={
                        "packer_calls": packer_calls,
                        "policy_calls": policy_calls,
                    },
                )
            unassigned.remove(job.name)

        energy = problem.energy_of(schedule) if schedule is not None else float("inf")
        return SchedulingResult(
            schedule=schedule,
            assignment=assignment,
            energy=energy,
            statistics={"packer_calls": packer_calls, "policy_calls": policy_calls},
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _feasible_configs(
        job: Job, problem: SchedulingProblem, containers: list[float]
    ) -> list[int]:
        """Filter the configurations of ``job`` (NEXTJOBMDF step (i)).

        A configuration is kept when (a) running the job's remaining work with
        it from *now* would meet the deadline and (b) the processing time it
        requires still fits into the knapsack containers.
        """
        table = problem.table_for(job)
        budget = job.deadline - problem.now
        feasible = []
        for index, point in enumerate(table):
            remaining = point.remaining_time(job.remaining_ratio)
            if remaining > budget + _EPSILON:
                continue
            demand_fits = all(
                point.resources[k] * remaining <= containers[k] + _EPSILON
                for k in range(len(containers))
            )
            if not demand_fits:
                continue
            feasible.append(index)
        return feasible

    @staticmethod
    def _consume(
        containers: list[float], table: ConfigTable, config_index: int, job: Job
    ) -> None:
        """Charge the committed configuration to the containers (line 12)."""
        point = table[config_index]
        remaining = point.remaining_time(job.remaining_ratio)
        for k in range(len(containers)):
            containers[k] -= point.resources[k] * remaining
