"""MMKP-LR — the Lagrangian-relaxation baseline scheduler.

The baseline follows Wildermann et al. as described in Section VI.A of the
paper: for the *current* mapping segment it builds an MMKP whose capacities
are the platform resources, solves the Lagrangian relaxation with a
subgradient method (limited to 100 iterations), and then maps jobs greedily in
increasing order of their minimum (Lagrangian-reduced) configuration cost.  A
configuration is accepted if the resources still fit and the job can meet its
deadline either by running that configuration until completion or — an
*optimistic* check — by being reconfigured to its fastest configuration at the
end of the segment.  The segment ends when the first mapped job finishes; the
procedure repeats for the remaining work.  The analysis scope is therefore a
single mapping segment, which is exactly the limitation the paper's global
MMKP-MDF removes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.knapsack import (
    MMKPItem,
    MMKPProblem,
    solve_lagrangian,
    solve_lagrangian_many,
)
from repro.obs import tracer as obs
from repro.optable.runtime import columnar_enabled
from repro.optable.view import ProblemView, SolveCache
from repro.platforms.resources import ResourceVector
from repro.schedulers.base import Scheduler, SchedulingResult

_RATIO_EPSILON = 1e-9
_TIME_EPSILON = 1e-9


@dataclass
class _PendingJob:
    """Mutable remaining-work record used while segments are being built."""

    job: Job
    remaining_ratio: float

    @property
    def name(self) -> str:
        return self.job.name

    def finished(self) -> bool:
        return self.remaining_ratio <= _RATIO_EPSILON


class MMKPLRScheduler(Scheduler):
    """Lagrangian-relaxation MMKP scheduler with single-segment scope.

    Parameters
    ----------
    max_subgradient_iterations:
        Iteration limit of the subgradient method per segment (the paper uses
        100).

    Examples
    --------
    >>> from repro.workload.motivational import motivational_problem
    >>> result = MMKPLRScheduler().schedule(motivational_problem("S1"))
    >>> result.feasible
    True
    """

    name = "mmkp-lr"

    def __init__(
        self,
        max_subgradient_iterations: int = 100,
        solve_cache: SolveCache | None = None,
    ):
        self._max_iterations = max_subgradient_iterations
        #: Fingerprint-keyed memo for the segment relaxations.  Per instance
        #: by default: a runtime-manager run (one scheduler, many arrivals)
        #: reuses solves, while independent schedulers — and wall-time
        #: measurements — stay isolated.  Pass a shared :class:`SolveCache`
        #: to pool deliberately (it is thread-safe).
        self.solve_cache = solve_cache if solve_cache is not None else SolveCache()
        self._own_cache = solve_cache is None
        self._pre_run_cache = None
        #: Counters of the most recent :meth:`schedule_many` call — batching
        #: telemetry only (round count, deduplicated relaxations and how many
        #: of those crossed ``groups`` boundaries); schedules never depend on
        #: it.  ``None`` until the first batched call.
        self.last_batch_stats: dict[str, object] | None = None

    # ------------------------------------------------------------------ #
    # Incremental-kernel hooks
    # ------------------------------------------------------------------ #
    def begin_run(self, kernel) -> None:
        """Adopt the kernel's shared relaxation memo as a warm start.

        Keys embed table fingerprints, the capacity and exact remaining
        ratios, so a hit anywhere in a batch replays the identical
        deterministic relaxation — adopting a shared cache can change wall
        time only, never a schedule.  An explicitly injected cache (the
        constructor's ``solve_cache``) is respected and kept.
        """
        if self._own_cache:
            self._pre_run_cache = self.solve_cache
            self.solve_cache = kernel.caches.solve_cache

    def end_run(self, kernel) -> None:
        """Restore the instance cache adopted over in :meth:`begin_run`.

        Keeps the adoption scoped to the run: a subsequent ``REPRO_KERNEL=0``
        run on the same scheduler instance (the like-for-like benchmark
        pattern) starts from the instance's own cold cache again, and the
        instance drops its reference to the manager's shared store.
        """
        if self._pre_run_cache is not None:
            self.solve_cache = self._pre_run_cache
            self._pre_run_cache = None

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        """Drive :meth:`_solve_gen`, solving each requested relaxation inline.

        The segment logic lives in the generator; this driver answers its
        relaxation requests one at a time, which is exactly the seed's
        sequential behaviour.  :meth:`schedule_many` drives many generators
        lock-step instead and answers a whole round of requests with one
        batched solve — same generator, so the schedules are identical by
        construction.
        """
        generator = self._solve_gen(problem)
        try:
            request = generator.send(None)
            while True:
                _, mmkp = request
                relaxation = solve_lagrangian(
                    mmkp, max_iterations=self._max_iterations
                )
                request = generator.send(relaxation)
        except StopIteration as stop:
            return stop.value

    # ------------------------------------------------------------------ #
    # Batched admission
    # ------------------------------------------------------------------ #
    def schedule_many(
        self,
        problems: Sequence[SchedulingProblem],
        groups: Sequence[object] | None = None,
    ) -> list[SchedulingResult]:
        """Schedule many problems, batching their Lagrangian relaxations.

        All problems' segment loops advance lock-step: each round collects
        every activation's pending :class:`SolveCache` miss, deduplicates
        identical relaxation keys and answers the round with one
        :func:`~repro.knapsack.solve_lagrangian_many` call (a single stacked
        subgradient solve with the dense backend).  Schedules, assignments,
        energies and statistics are bit-identical to calling
        :meth:`~repro.schedulers.base.Scheduler.schedule` per problem — only
        the wall time changes, so ``search_time`` is reported as each
        activation's equal share of the batch.

        ``groups`` optionally labels each problem with an opaque group token
        (a DSE sweep passes its sweep-point key).  Groups never influence the
        schedules; they only split :attr:`last_batch_stats`'s deduplication
        counter into same-group and cross-group shares, which is how the
        sweep engine proves that relaxations were shared *across* sweep
        points rather than merely within one.

        Falls back to sequential :meth:`schedule` calls when the columnar
        path is disabled (``REPRO_OPTABLE=0``), where no solve-cache keys
        exist to batch on.
        """
        problems = list(problems)
        if groups is not None:
            groups = list(groups)
            if len(groups) != len(problems):
                raise ValueError(
                    f"groups has {len(groups)} entries for {len(problems)} problems"
                )
        if not problems:
            return []
        if not columnar_enabled():
            self.last_batch_stats = {
                "batched": False,
                "problems": len(problems),
                "rounds": 0,
                "requested": 0,
                "solved": 0,
                "deduped": 0,
                "cross_group_deduped": 0,
            }
            return [self.schedule(problem) for problem in problems]
        with obs.span(
            "solve_many", category="scheduler", scheduler=self.name
        ) as span:
            start = time.perf_counter()
            raw = self._drive_many(problems, groups)
            elapsed = time.perf_counter() - start
            span.annotate(problems=len(problems))
        share = elapsed / len(problems)
        return [
            SchedulingResult(
                schedule=result.schedule,
                assignment=result.assignment,
                energy=result.energy,
                search_time=share,
                statistics=result.statistics,
            )
            for result in raw
        ]

    def _drive_many(
        self,
        problems: Sequence[SchedulingProblem],
        groups: Sequence[object] | None = None,
    ) -> list[SchedulingResult]:
        """Advance all solve generators lock-step, round by round."""
        results: list[SchedulingResult | None] = [None] * len(problems)
        live: list[tuple[int, object, tuple]] = []
        for index, problem in enumerate(problems):
            generator = self._solve_gen(problem)
            try:
                request = generator.send(None)
            except StopIteration as stop:
                results[index] = stop.value
            else:
                live.append((index, generator, request))

        stats = {
            "batched": True,
            "problems": len(problems),
            "rounds": 0,
            "requested": 0,
            "solved": 0,
            "deduped": 0,
            "cross_group_deduped": 0,
        }
        self.last_batch_stats = stats
        while live:
            # One batched solve answers the whole round; identical keys
            # (same tables, ratios and capacity anywhere in the batch) are
            # solved once, exactly as the SolveCache would replay them.
            order: list = []
            unique: dict = {}
            first_group: dict = {}
            stats["rounds"] += 1
            stats["requested"] += len(live)
            for index, _, (key, mmkp) in live:
                group = None if groups is None else groups[index]
                if key not in unique:
                    unique[key] = mmkp
                    order.append(key)
                    first_group[key] = group
                else:
                    stats["deduped"] += 1
                    if groups is not None and first_group[key] != group:
                        stats["cross_group_deduped"] += 1
            stats["solved"] += len(order)
            solved = solve_lagrangian_many(
                [unique[key] for key in order],
                max_iterations=self._max_iterations,
            )
            by_key = dict(zip(order, solved))

            next_live: list[tuple[int, object, tuple]] = []
            for index, generator, (key, _) in live:
                try:
                    request = generator.send(by_key[key])
                except StopIteration as stop:
                    results[index] = stop.value
                else:
                    next_live.append((index, generator, request))
            live = next_live
        return results

    def _solve_gen(self, problem: SchedulingProblem):
        """Generator form of the segment loop.

        Yields ``(cache_key, MMKPProblem)`` whenever a segment relaxation
        misses the :attr:`solve_cache` and expects the
        :class:`~repro.knapsack.LagrangianResult` back via ``send`` — the
        only solver-facing seam, so the single-problem and batched drivers
        share every line of scheduling logic.
        """
        columnar = columnar_enabled()
        view = problem.view() if columnar else None
        pending = [
            _PendingJob(job, job.remaining_ratio)
            for job in sorted(problem.jobs, key=lambda j: j.name)
        ]
        segments: list[MappingSegment] = []
        first_config: dict[str, int] = {}
        now = problem.now
        subgradient_iterations = 0
        segment_count = 0

        while any(not p.finished() for p in pending):
            active = [p for p in pending if not p.finished()]

            # Every unfinished job must still have a chance to meet its
            # deadline; otherwise the request set is rejected.
            for record in active:
                if columnar:
                    fastest = view.optable(record.job.application).min_time
                else:
                    fastest = problem.table_for(record.job).fastest().execution_time
                if now + fastest * record.remaining_ratio > record.job.deadline + 1e-6:
                    return self._reject(subgradient_iterations, segment_count)

            if columnar:
                assignment, iterations = yield from self._assign_segment_columnar(
                    view, active, now
                )
            else:
                assignment, iterations = self._assign_segment(problem, active, now)
            subgradient_iterations += iterations
            if not assignment:
                # No job could be mapped onto the empty platform: no progress
                # is possible, reject.
                return self._reject(subgradient_iterations, segment_count)

            # The segment ends when the first mapped job finishes.
            if columnar:
                segment_end = min(
                    now
                    + view.optable(record.job.application).times[
                        assignment[record.name]
                    ]
                    * record.remaining_ratio
                    for record in active
                    if record.name in assignment
                )
            else:
                segment_end = min(
                    now
                    + problem.table_for(record.job)[
                        assignment[record.name]
                    ].remaining_time(record.remaining_ratio)
                    for record in active
                    if record.name in assignment
                )
            duration = segment_end - now
            if duration <= _TIME_EPSILON:
                return self._reject(subgradient_iterations, segment_count)

            mappings = []
            for record in active:
                if record.name not in assignment:
                    continue
                config_index = assignment[record.name]
                first_config.setdefault(record.name, config_index)
                mappings.append(JobMapping(record.job, config_index))
                if columnar:
                    execution_time = view.optable(record.job.application).times[
                        config_index
                    ]
                else:
                    execution_time = problem.table_for(record.job)[
                        config_index
                    ].execution_time
                record.remaining_ratio -= duration / execution_time
                if record.remaining_ratio <= _RATIO_EPSILON:
                    record.remaining_ratio = 0.0
                    if segment_end > record.job.deadline + 1e-6:
                        return self._reject(subgradient_iterations, segment_count)
            segments.append(MappingSegment(now, segment_end, mappings))
            segment_count += 1
            now = segment_end

        schedule = Schedule(segments)
        return SchedulingResult(
            schedule=schedule,
            assignment=first_config,
            energy=problem.energy_of(schedule),
            statistics={
                "subgradient_iterations": subgradient_iterations,
                "segments": segment_count,
            },
        )

    @staticmethod
    def _reject(subgradient_iterations: int, segment_count: int) -> SchedulingResult:
        return SchedulingResult(
            schedule=None,
            statistics={
                "subgradient_iterations": subgradient_iterations,
                "segments": segment_count,
            },
        )

    # ------------------------------------------------------------------ #
    # Per-segment assignment
    # ------------------------------------------------------------------ #
    def _assign_segment(
        self,
        problem: SchedulingProblem,
        active: list[_PendingJob],
        now: float,
    ) -> tuple[dict[str, int], int]:
        """Pick one configuration per job for the segment starting at ``now``.

        Returns the assignment (jobs left out are suspended for the segment)
        and the number of subgradient iterations spent.
        """
        capacity = problem.capacity

        # Build the single-segment MMKP: values are negated remaining energies,
        # weights are the per-type core demands, capacities are the cores.
        groups = []
        candidates: list[list[tuple[int, OperatingPoint]]] = []
        for record in active:
            table = problem.table_for(record.job)
            feasible = [
                (index, point)
                for index, point in enumerate(table)
                if point.resources.fits_into(capacity)
            ]
            candidates.append(feasible)
            groups.append(
                [
                    MMKPItem(
                        value=-point.remaining_energy(record.remaining_ratio),
                        weights=tuple(float(c) for c in point.resources),
                        label=index,
                    )
                    for index, point in feasible
                ]
                or [MMKPItem(value=0.0, weights=tuple(0.0 for _ in capacity), label=None)]
            )

        mmkp = MMKPProblem([float(c) for c in capacity], groups)
        relaxation = solve_lagrangian(mmkp, max_iterations=self._max_iterations)
        multipliers = relaxation.multipliers

        def reduced_cost(record: _PendingJob, point: OperatingPoint) -> float:
            energy = point.remaining_energy(record.remaining_ratio)
            penalty = sum(
                multiplier * resource
                for multiplier, resource in zip(multipliers, point.resources)
            )
            return energy + penalty

        # Map jobs in increasing order of their minimum configuration cost.
        ordering = []
        for record, feasible in zip(active, candidates):
            if feasible:
                minimum = min(reduced_cost(record, point) for _, point in feasible)
            else:
                minimum = float("inf")
            ordering.append((minimum, record, feasible))
        ordering.sort(key=lambda entry: (entry[0], entry[1].name))

        assignment: dict[str, int] = {}
        remaining = capacity
        # Estimated end of the segment under construction: the earliest
        # completion among the jobs assigned so far.  The optimistic deadline
        # check assumes the job switches to its fastest configuration at that
        # point.
        estimated_end = float("inf")
        for _, record, feasible in ordering:
            table = problem.table_for(record.job)
            deadline = record.job.deadline
            fastest = table.fastest().execution_time
            for index, point in sorted(
                feasible, key=lambda item: reduced_cost(record, item[1])
            ):
                if not point.resources.fits_into(remaining):
                    continue
                completion = now + point.remaining_time(record.remaining_ratio)
                if completion <= deadline + 1e-9:
                    accepted = True
                else:
                    # Optimistic check: run this configuration until the end
                    # of the segment, then reconfigure to the fastest one.
                    segment_end = min(estimated_end, completion)
                    progressed = (segment_end - now) / point.execution_time
                    left_after = max(0.0, record.remaining_ratio - progressed)
                    accepted = (
                        segment_end + fastest * left_after <= deadline + 1e-9
                    )
                if not accepted:
                    continue
                assignment[record.name] = index
                remaining = remaining - point.resources
                estimated_end = min(estimated_end, completion)
                break

        return assignment, relaxation.iterations

    def _assign_segment_columnar(
        self,
        view: ProblemView,
        active: list[_PendingJob],
        now: float,
    ):
        """Columnar twin of :meth:`_assign_segment` (generator form).

        Builds the single-segment MMKP from the view's cached
        capacity-feasible slices (no ``MMKPItem`` churn) and memoises the
        Lagrangian solve in this scheduler's :attr:`solve_cache`, keyed by
        table fingerprints, exact remaining ratios and the capacity — a hit
        replays the identical deterministic relaxation without spending the
        100 subgradient iterations again.  On a miss the relaxation is not
        solved here: the ``(key, mmkp)`` pair is *yielded* to whichever
        driver is advancing the generator (inline single solve or the
        lock-step batch), and the result arrives back via ``send``.
        """
        capacity = view.capacity
        dimension = len(capacity)

        entries = [
            (record.job.application, record.remaining_ratio) for record in active
        ]
        key = view.lagrangian_key(entries, self._max_iterations)
        relaxation = self.solve_cache.get(key)
        if relaxation is None:
            group_values = []
            group_rows = []
            for application, ratio in entries:
                fitting = view.fitting_indices(application)
                if fitting:
                    energies = view.optable(application).energies
                    group_values.append([-(energies[i] * ratio) for i in fitting])
                    group_rows.append(view.mmkp_weight_rows(application))
                else:
                    group_values.append([0.0])
                    group_rows.append((tuple(0.0 for _ in capacity),))
            mmkp = MMKPProblem.from_columns(
                [float(c) for c in capacity], group_values, group_rows
            )
            relaxation = yield (key, mmkp)
            self.solve_cache.put(key, relaxation)
        multipliers = relaxation.multipliers

        def reduced_cost(ratio: float, energy: float, row: tuple[int, ...]) -> float:
            penalty = sum(
                multiplier * resource for multiplier, resource in zip(multipliers, row)
            )
            return energy * ratio + penalty

        # Map jobs in increasing order of their minimum configuration cost.
        ordering = []
        for record in active:
            application = record.job.application
            table = view.optable(application)
            fitting = view.fitting_indices(application)
            if fitting:
                ratio = record.remaining_ratio
                minimum = min(
                    reduced_cost(ratio, table.energies[i], table.resources[i])
                    for i in fitting
                )
            else:
                minimum = float("inf")
            ordering.append((minimum, record, fitting))
        ordering.sort(key=lambda entry: (entry[0], entry[1].name))

        assignment: dict[str, int] = {}
        remaining = list(capacity)
        # Estimated end of the segment under construction (see the seed path).
        estimated_end = float("inf")
        for _, record, fitting in ordering:
            table = view.optable(record.job.application)
            times = table.times
            energies = table.energies
            resources = table.resources
            ratio = record.remaining_ratio
            deadline = record.job.deadline
            fastest = table.min_time
            for index in sorted(
                fitting, key=lambda i: reduced_cost(ratio, energies[i], resources[i])
            ):
                row = resources[index]
                fits = True
                for k in range(dimension):
                    if row[k] > remaining[k]:
                        fits = False
                        break
                if not fits:
                    continue
                completion = now + times[index] * ratio
                if completion <= deadline + 1e-9:
                    accepted = True
                else:
                    # Optimistic check: run this configuration until the end
                    # of the segment, then reconfigure to the fastest one.
                    segment_end = min(estimated_end, completion)
                    progressed = (segment_end - now) / times[index]
                    left_after = max(0.0, ratio - progressed)
                    accepted = segment_end + fastest * left_after <= deadline + 1e-9
                if not accepted:
                    continue
                assignment[record.name] = index
                for k in range(dimension):
                    remaining[k] -= row[k]
                estimated_end = min(estimated_end, completion)
                break

        return assignment, relaxation.iterations
