"""EX-MEM — exhaustive segment-level search with memoisation.

EX-MEM is the (near-)optimal reference scheduler of the paper's evaluation.
It explores every possible mapping of the current job set onto one mapping
segment, cuts the segment at the point where the first mapped job finishes,
and recurses on the remaining work.  The best (minimum-energy) continuation of
every encountered state — the pair of remaining progress ratios and the
current time — is memoised, which prunes the exponential recursion
considerably but does not change its worst-case complexity: the paper reports
an average of 152 s and a worst case of ~2550 s for four jobs.

Because the search is exponential, the class exposes two practical knobs:

* ``max_configs_per_job`` restricts each job to its N most energy-efficient
  operating points (``None`` keeps all points).
* ``max_states`` bounds the number of distinct memoised states; when the
  budget is exhausted the search stops expanding and reports the problem as
  unsolved (``budget_exhausted`` is set in the result statistics so the
  experiment harness can flag such runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.schedulers.base import Scheduler, SchedulingResult

_RATIO_EPSILON = 1e-9
_TIME_EPSILON = 1e-9
#: Number of decimal digits used to quantise memoisation keys.
_KEY_DIGITS = 6


@dataclass(frozen=True)
class _JobState:
    """Remaining work of one job inside the recursive search."""

    job: Job
    remaining_ratio: float

    @property
    def name(self) -> str:
        return self.job.name

    def finished(self) -> bool:
        return self.remaining_ratio <= _RATIO_EPSILON


class _BudgetExhausted(Exception):
    """Internal signal: the state budget was consumed, abort the search."""


class ExMemScheduler(Scheduler):
    """Exhaustive mapping-segment search with memoisation (EX-MEM baseline).

    Parameters
    ----------
    max_configs_per_job:
        If given, each job only considers its ``N`` most energy-efficient
        operating points.  The paper uses the full tables; the benchmark
        harness restricts them to keep the reference runs tractable.
    max_states:
        Upper bound on the number of memoised states (``None`` = unlimited).
    """

    name = "ex-mem"

    def __init__(
        self,
        max_configs_per_job: int | None = None,
        max_states: int | None = 2_000_000,
    ):
        self._max_configs = max_configs_per_job
        self._max_states = max_states
        self._kernel_caches = None

    # ------------------------------------------------------------------ #
    # Incremental-kernel hooks
    # ------------------------------------------------------------------ #
    def begin_run(self, kernel) -> None:
        """Adopt the kernel's shared per-table candidate-column store.

        The candidate points/columns of an application depend only on the
        table content and the truncation knob; keying by the interned
        table fingerprint lets every activation of a run (and every job of
        a batch posing the same tables) reuse one derivation.
        """
        self._kernel_caches = kernel.caches

    def end_run(self, kernel) -> None:
        self._kernel_caches = None

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        self._problem = problem
        self._capacity_counts = tuple(problem.capacity)
        self._memo: dict = {}
        self._points_cache: dict[str, list[tuple[int, OperatingPoint]]] = {}
        #: Per-application candidate columns, derived once per solve:
        #: ``app → (times, energies, resource rows, cheapest energy,
        #: fastest time)`` with columns indexed by *configuration index*
        #: (sparse dict per app, since truncation may skip indices).
        self._columns_cache: dict[str, tuple] = {}
        self._states_created = 0
        budget_exhausted = False

        states = tuple(
            _JobState(job, job.remaining_ratio)
            for job in sorted(problem.jobs, key=lambda j: j.name)
        )
        try:
            best_energy, _ = self._best_continuation(problem.now, states)
        except _BudgetExhausted:
            best_energy = float("inf")
            budget_exhausted = True

        statistics = {
            "states": self._states_created,
            "budget_exhausted": float(budget_exhausted),
        }
        if best_energy == float("inf"):
            return SchedulingResult(schedule=None, statistics=statistics)

        schedule, assignment = self._reconstruct(problem.now, states)
        return SchedulingResult(
            schedule=schedule,
            assignment=assignment,
            energy=problem.energy_of(schedule),
            statistics=statistics,
        )

    # ------------------------------------------------------------------ #
    # Recursive search
    # ------------------------------------------------------------------ #
    def _candidate_points(self, job: Job) -> list[tuple[int, OperatingPoint]]:
        """The (index, point) pairs this job may use, possibly truncated."""
        if job.application not in self._points_cache:
            pairs = None
            caches = self._kernel_caches
            if caches is not None:
                # Shared across activations (and batch jobs) by table
                # content: the pairs are a pure function of the interned
                # table and the truncation knob.
                table = self._problem.optable_for(job)
                entry = caches.exmem_columns(table.fingerprint, self._max_configs)
                if entry is not None:
                    pairs = entry[0]
            if pairs is None:
                table = self._problem.optable_for(job)
                pairs = [(index, table.points[index]) for index in range(len(table))]
                if self._max_configs is not None and len(pairs) > self._max_configs:
                    # ``order_by_energy`` is the same stable energy sort the
                    # seed performed here per solve.
                    pairs = [
                        (index, table.points[index])
                        for index in table.order_by_energy[: self._max_configs]
                    ]
            self._points_cache[job.application] = pairs
        return self._points_cache[job.application]

    def _candidate_columns(self, job: Job):
        """Columnar view of the candidate set of ``job``'s application.

        Returns ``(times, energies, rows, cheapest, fastest)`` where the
        first three are dicts keyed by configuration index (the candidate set
        may be truncated) and the minima are over the candidate set — the
        values the seed re-derived with ``min(...)`` scans per search state.
        Under the incremental kernel the derivation is shared process-wide
        by table fingerprint (see :meth:`begin_run`).
        """
        application = job.application
        columns = self._columns_cache.get(application)
        if columns is None:
            caches = self._kernel_caches
            fingerprint = None
            if caches is not None:
                fingerprint = self._problem.optable_for(job).fingerprint
                entry = caches.exmem_columns(fingerprint, self._max_configs)
                if entry is not None and entry[1] is not None:
                    self._columns_cache[application] = entry[1]
                    self._points_cache.setdefault(application, entry[0])
                    return entry[1]
            pairs = self._candidate_points(job)
            times = {index: point.execution_time for index, point in pairs}
            energies = {index: point.energy for index, point in pairs}
            rows = {index: tuple(point.resources) for index, point in pairs}
            cheapest = min(energies.values())
            fastest = min(times.values())
            columns = (times, energies, rows, cheapest, fastest)
            self._columns_cache[application] = columns
            if caches is not None:
                caches.store_exmem_columns(
                    fingerprint, self._max_configs, (pairs, columns)
                )
        return columns

    def _state_key(self, now: float, states: Sequence[_JobState]):
        return (
            round(now, _KEY_DIGITS),
            tuple((s.name, round(s.remaining_ratio, _KEY_DIGITS)) for s in states),
        )

    def _energy_lower_bound(self, states: Sequence[_JobState]) -> float:
        """Admissible bound: every job finishes with its cheapest configuration."""
        bound = 0.0
        for state in states:
            if state.finished():
                continue
            cheapest = self._candidate_columns(state.job)[3]
            bound += cheapest * state.remaining_ratio
        return bound

    def _best_continuation(self, now: float, states: Sequence[_JobState]):
        """Return ``(best energy, best decision)`` for the given state.

        The decision is ``(assignment, segment_end)`` where the assignment
        maps job names to configuration indices of the jobs running in the
        next segment.  ``float('inf')`` marks infeasible states.

        The optimal continuation of a state does not depend on how the state
        was reached, so a *local* branch-and-bound is exact and composes with
        the memoisation: within one state's enumeration a child assignment is
        skipped as soon as its segment energy plus an admissible lower bound
        on the child state can no longer beat the best child found so far.
        """
        active = [s for s in states if not s.finished()]
        if not active:
            return 0.0, None

        # Prune: every unfinished job must still be able to meet its deadline
        # even when executed with its fastest configuration starting now.
        for state in active:
            fastest = self._candidate_columns(state.job)[4]
            if now + fastest * state.remaining_ratio > state.job.deadline + 1e-6:
                return float("inf"), None

        key = self._state_key(now, active)
        if key in self._memo:
            return self._memo[key]

        self._states_created += 1
        if self._max_states is not None and self._states_created > self._max_states:
            raise _BudgetExhausted()

        # Evaluate the most promising assignments first so the local bound
        # becomes effective as early as possible.
        candidates = []
        for assignment in self._enumerate_assignments(active):
            estimate = self._assignment_estimate(now, active, assignment)
            if estimate is not None:
                candidates.append((estimate, assignment))
        candidates.sort(key=lambda item: item[0])

        best_energy = float("inf")
        best_decision = None
        for estimate, assignment in candidates:
            if estimate >= best_energy - 1e-12:
                break  # candidates are sorted; no later one can improve
            energy, decision = self._evaluate_assignment(now, states, active, assignment)
            if energy < best_energy:
                best_energy = energy
                best_decision = decision

        self._memo[key] = (best_energy, best_decision)
        return best_energy, best_decision

    def _assignment_estimate(
        self, now: float, active: Sequence[_JobState], assignment: Mapping[str, int]
    ) -> float | None:
        """Admissible estimate of the total energy of a child assignment.

        The estimate charges every mapped job the energy it actually consumes
        during the segment, every job its cheapest-configuration energy for
        the remaining work afterwards, and returns ``None`` for assignments
        that cannot make progress.
        """
        segment_end = float("inf")
        for state in active:
            if state.name not in assignment:
                continue
            times = self._candidate_columns(state.job)[0]
            segment_end = min(
                segment_end,
                now + times[assignment[state.name]] * state.remaining_ratio,
            )
        if segment_end == float("inf"):
            return None
        duration = segment_end - now
        if duration <= _TIME_EPSILON:
            return None

        estimate = 0.0
        for state in active:
            times, energies, _, cheapest, _ = self._candidate_columns(state.job)
            if state.name not in assignment:
                estimate += cheapest * state.remaining_ratio
                continue
            config_index = assignment[state.name]
            progressed = min(state.remaining_ratio, duration / times[config_index])
            estimate += energies[config_index] * progressed
            estimate += cheapest * (state.remaining_ratio - progressed)
        return estimate

    def _enumerate_assignments(
        self, active: Sequence[_JobState]
    ) -> Iterator[dict[str, int]]:
        """Yield every resource-feasible assignment with at least one mapped job.

        Each active job either runs one of its candidate configurations or is
        suspended for the segment (absent from the assignment).
        """
        capacity = self._capacity_counts
        dimension = len(capacity)
        rows_by_state = [self._candidate_columns(state.job)[2] for state in active]

        def recurse(index: int, used: tuple[int, ...], chosen: dict[str, int]):
            if index == len(active):
                if chosen:
                    yield dict(chosen)
                return
            state = active[index]
            # Option 1: suspend the job for this segment.
            yield from recurse(index + 1, used, chosen)
            # Option 2: run it with one of its configurations.
            rows = rows_by_state[index]
            for config_index, _ in self._candidate_points(state.job):
                row = rows[config_index]
                total = tuple(u + r for u, r in zip(used, row))
                fits = True
                for k in range(dimension):
                    if total[k] > capacity[k]:
                        fits = False
                        break
                if not fits:
                    continue
                chosen[state.name] = config_index
                yield from recurse(index + 1, total, chosen)
                del chosen[state.name]

        yield from recurse(0, (0,) * dimension, {})

    def _evaluate_assignment(
        self,
        now: float,
        states: Sequence[_JobState],
        active: Sequence[_JobState],
        assignment: Mapping[str, int],
    ):
        """Energy of the segment defined by ``assignment`` plus the best continuation."""
        # The segment ends when the first mapped job finishes ("cut the
        # segment on the shortest job").
        segment_end = float("inf")
        for state in active:
            if state.name not in assignment:
                continue
            times = self._candidate_columns(state.job)[0]
            segment_end = min(
                segment_end,
                now + times[assignment[state.name]] * state.remaining_ratio,
            )
        duration = segment_end - now
        if duration <= _TIME_EPSILON:
            return float("inf"), None

        # Segment energy and new job states.
        segment_energy = 0.0
        new_states = []
        for state in states:
            if state.finished() or state.name not in assignment:
                new_states.append(state)
                continue
            times, energies, _, _, _ = self._candidate_columns(state.job)
            config_index = assignment[state.name]
            execution_time = times[config_index]
            segment_energy += energies[config_index] * duration / execution_time
            progressed = duration / execution_time
            remaining = state.remaining_ratio - progressed
            if remaining <= _RATIO_EPSILON:
                remaining = 0.0
                if segment_end > state.job.deadline + 1e-6:
                    return float("inf"), None
            new_states.append(_JobState(state.job, remaining))

        tail_energy, _ = self._best_continuation(segment_end, tuple(new_states))
        if tail_energy == float("inf"):
            return float("inf"), None
        return segment_energy + tail_energy, (dict(assignment), segment_end)

    # ------------------------------------------------------------------ #
    # Schedule reconstruction from the memo table
    # ------------------------------------------------------------------ #
    def _reconstruct(self, now: float, states: Sequence[_JobState]):
        """Rebuild the optimal schedule by replaying the memoised decisions."""
        segments: list[MappingSegment] = []
        first_config: dict[str, int] = {}
        current_states = tuple(states)
        current_time = now

        while True:
            active = [s for s in current_states if not s.finished()]
            if not active:
                break
            key = self._state_key(current_time, active)
            _, decision = self._memo[key]
            if decision is None:
                break
            assignment, segment_end = decision
            mappings = []
            for state in active:
                if state.name not in assignment:
                    continue
                config_index = assignment[state.name]
                first_config.setdefault(state.name, config_index)
                mappings.append(JobMapping(state.job, config_index))
            segments.append(MappingSegment(current_time, segment_end, mappings))

            duration = segment_end - current_time
            next_states = []
            for state in current_states:
                if state.finished() or state.name not in assignment:
                    next_states.append(state)
                    continue
                times = self._candidate_columns(state.job)[0]
                remaining = (
                    state.remaining_ratio - duration / times[assignment[state.name]]
                )
                if remaining <= _RATIO_EPSILON:
                    remaining = 0.0
                next_states.append(_JobState(state.job, remaining))
            current_states = tuple(next_states)
            current_time = segment_end

        return Schedule(segments), first_config
