"""Common scheduler interface and result type."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.problem import SchedulingProblem
from repro.core.segment import Schedule
from repro.obs import tracer as obs


@dataclass(frozen=True)
class SchedulingResult:
    """Outcome of one scheduler activation.

    Attributes
    ----------
    schedule:
        The generated schedule, or ``None`` if the request set was rejected
        (no feasible schedule found).
    assignment:
        For schedulers that assign one configuration index per job (MMKP-MDF
        and MMKP-LR), the mapping job name → configuration index of the last
        accepted assignment.  EX-MEM may remap jobs between segments, in which
        case the dictionary holds the configuration used in the job's first
        segment.
    energy:
        Total energy (objective 2a) of the schedule; ``inf`` when rejected.
    search_time:
        Wall-clock seconds spent inside the scheduler.
    statistics:
        Scheduler-specific counters (packer invocations, explored states,
        subgradient iterations, ...) for the overhead analysis.
    """

    schedule: Schedule | None
    assignment: Mapping[str, int] = field(default_factory=dict)
    energy: float = float("inf")
    search_time: float = 0.0
    statistics: Mapping[str, float] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """``True`` iff a schedule was found (the request set is admitted)."""
        return self.schedule is not None

    def __bool__(self) -> bool:
        return self.feasible


class Scheduler(abc.ABC):
    """Abstract base class of all runtime-manager scheduling algorithms."""

    #: Short machine-readable identifier used in reports and benchmarks.
    name: str = "scheduler"

    @abc.abstractmethod
    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        """Compute a schedule for ``problem`` (implemented by subclasses)."""

    # ------------------------------------------------------------------ #
    # Incremental-kernel hooks
    # ------------------------------------------------------------------ #
    def begin_run(self, kernel) -> None:
        """Hook: a runtime-manager run is starting under the incremental kernel.

        ``kernel`` is the run's :class:`~repro.kernel.pipeline.KernelRun`;
        its :attr:`~repro.kernel.pipeline.KernelRun.caches` carry
        content-keyed warm starts (table slices, MMKP-LR relaxations,
        EX-MEM candidate columns) that survive across runs and batch jobs.
        Schedulers adopt what helps them — any reuse must be keyed so a hit
        is bit-identical to a fresh computation (fingerprints + exact
        ratios, like :class:`~repro.optable.view.SolveCache`).  The default
        is a no-op; the hook is never called with ``REPRO_KERNEL=0``.
        """

    def end_run(self, kernel) -> None:
        """Hook: the run that :meth:`begin_run` opened has finished.

        Called from a ``finally`` block, so per-run state adopted in
        :meth:`begin_run` can be released even when the run raises.  The
        default is a no-op.
        """

    def schedule(self, problem: SchedulingProblem) -> SchedulingResult:
        """Solve ``problem`` and attach the wall-clock search time.

        This is the public entry point; it wraps :meth:`_solve` with timing so
        every scheduler reports its overhead the same way (Fig. 4 of the
        paper).  When a :mod:`repro.obs` tracer is active the solve runs
        inside a ``solve`` span annotated with the scheduler's statistics
        (subgradient iterations, packer calls, cache hits, ...).
        """
        with obs.span("solve", category="scheduler", scheduler=self.name) as span:
            start = time.perf_counter()
            result = self._solve(problem)
            elapsed = time.perf_counter() - start
            span.annotate(
                feasible=result.feasible,
                jobs=len(problem.jobs),
                **{
                    key: value
                    for key, value in result.statistics.items()
                    if isinstance(value, (int, float))
                },
            )
        return SchedulingResult(
            schedule=result.schedule,
            assignment=result.assignment,
            energy=result.energy,
            search_time=elapsed,
            statistics=result.statistics,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
