"""Schedulers: the paper's contribution and the two baselines.

* :class:`MMKPMDFScheduler` — the proposed MMKP-MDF heuristic
  (Algorithm 1 + Algorithm 2 of the paper).
* :class:`ExMemScheduler` — EX-MEM, the exhaustive segment-level search with
  memoisation used as the (near-)optimal energy reference.
* :class:`MMKPLRScheduler` — MMKP-LR, the Lagrangian-relaxation baseline whose
  analysis scope is limited to a single mapping segment.

All schedulers share the :class:`Scheduler` interface: they take a
:class:`~repro.core.problem.SchedulingProblem` and return a
:class:`SchedulingResult` whose ``schedule`` is ``None`` when the job set must
be rejected.
"""

from repro.schedulers.base import Scheduler, SchedulingResult
from repro.schedulers.edf_packer import pack_jobs_edf
from repro.schedulers.mdf import MMKPMDFScheduler
from repro.schedulers.exmem import ExMemScheduler
from repro.schedulers.lr import MMKPLRScheduler
from repro.schedulers.fixed import FixedMinEnergyScheduler
from repro.schedulers.policies import (
    ArrivalOrderPolicy,
    EarliestDeadlinePolicy,
    JobSelectionPolicy,
    MaximumDifferencePolicy,
    MinimumLaxityPolicy,
    RandomPolicy,
)

__all__ = [
    "Scheduler",
    "SchedulingResult",
    "pack_jobs_edf",
    "MMKPMDFScheduler",
    "ExMemScheduler",
    "MMKPLRScheduler",
    "FixedMinEnergyScheduler",
    "JobSelectionPolicy",
    "MaximumDifferencePolicy",
    "EarliestDeadlinePolicy",
    "ArrivalOrderPolicy",
    "MinimumLaxityPolicy",
    "RandomPolicy",
]
