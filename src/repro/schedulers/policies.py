"""Job-selection policies for the MMKP mapping heuristic.

The paper's Algorithm 1 selects the next job to map with *Maximum Difference
First* (MDF): the job whose energy penalty would be largest if it could not
use its most efficient feasible configuration.  For the ablation study
(DESIGN.md, Section 5) we also provide simpler orders so the benefit of MDF
can be quantified.

Every policy receives the list of not-yet-assigned jobs together with their
currently feasible configuration indices and returns the job to handle next.
"""

from __future__ import annotations

import abc
import random
from typing import Mapping, Sequence

from repro.core.config import ConfigTable
from repro.core.request import Job
from repro.optable.runtime import columnar_enabled


class JobSelectionPolicy(abc.ABC):
    """Strategy object deciding which unassigned job Algorithm 1 maps next."""

    name: str = "policy"

    @abc.abstractmethod
    def select(
        self,
        candidates: Sequence[tuple[Job, list[int]]],
        tables: Mapping[str, ConfigTable],
        now: float,
    ) -> tuple[Job, list[int]]:
        """Pick one ``(job, feasible configuration indices)`` pair.

        ``candidates`` is never empty.  Jobs with an empty configuration list
        are passed through as well; policies should return such a job
        immediately because the overall problem is then infeasible and
        Algorithm 1 can terminate early.
        """

    @staticmethod
    def _hopeless(candidates: Sequence[tuple[Job, list[int]]]):
        """Return a job with no feasible configuration, if any."""
        for job, indices in candidates:
            if not indices:
                return job, indices
        return None


class MaximumDifferencePolicy(JobSelectionPolicy):
    """The paper's MDF policy.

    The priority of a job is the energy difference between its best (lowest
    remaining energy) feasible configuration and the second best one; a job
    with a single feasible configuration gets infinite priority because not
    scheduling it with that configuration means rejecting it.
    """

    name = "mdf"

    def select(self, candidates, tables, now):
        hopeless = self._hopeless(candidates)
        if hopeless is not None:
            return hopeless

        if columnar_enabled():
            # Columnar fast path: the priority needs only the two smallest
            # remaining energies, read from the interned energy column — same
            # floats as sorting the full list, without building it.
            def priority(entry: tuple[Job, list[int]]) -> float:
                job, indices = entry
                if len(indices) == 1:
                    return float("inf")
                energies = tables[job.application].optable.energies
                ratio = job.remaining_ratio
                smallest = second = float("inf")
                for index in indices:
                    value = energies[index] * ratio
                    if value < smallest:
                        smallest, second = value, smallest
                    elif value < second:
                        second = value
                return second - smallest

        else:

            def priority(entry: tuple[Job, list[int]]) -> float:
                job, indices = entry
                table = tables[job.application]
                energies = sorted(
                    table[i].remaining_energy(job.remaining_ratio) for i in indices
                )
                if len(energies) == 1:
                    return float("inf")
                return energies[1] - energies[0]

        return max(candidates, key=lambda entry: (priority(entry), entry[0].name))


class EarliestDeadlinePolicy(JobSelectionPolicy):
    """Map the job with the earliest absolute deadline first."""

    name = "edf"

    def select(self, candidates, tables, now):
        hopeless = self._hopeless(candidates)
        if hopeless is not None:
            return hopeless
        return min(candidates, key=lambda entry: (entry[0].deadline, entry[0].name))


class ArrivalOrderPolicy(JobSelectionPolicy):
    """Map jobs in the order they arrived (FIFO)."""

    name = "arrival"

    def select(self, candidates, tables, now):
        hopeless = self._hopeless(candidates)
        if hopeless is not None:
            return hopeless
        return min(candidates, key=lambda entry: (entry[0].arrival, entry[0].name))


class MinimumLaxityPolicy(JobSelectionPolicy):
    """Map the job with the least slack (deadline minus fastest remaining time)."""

    name = "laxity"

    def select(self, candidates, tables, now):
        hopeless = self._hopeless(candidates)
        if hopeless is not None:
            return hopeless

        def laxity(entry: tuple[Job, list[int]]) -> float:
            job, indices = entry
            table = tables[job.application]
            fastest = min(table[i].remaining_time(job.remaining_ratio) for i in indices)
            return job.deadline - now - fastest

        return min(candidates, key=lambda entry: (laxity(entry), entry[0].name))


class RandomPolicy(JobSelectionPolicy):
    """Map jobs in uniformly random order (ablation control)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(self, candidates, tables, now):
        hopeless = self._hopeless(candidates)
        if hopeless is not None:
            return hopeless
        return candidates[self._rng.randrange(len(candidates))]
