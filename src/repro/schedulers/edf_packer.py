"""The EDF mapping-segment packer (Algorithm 2 of the paper, SCHEDULEJOBS).

Given one configuration index per job, the packer constructs the mapping
segments: jobs are placed in non-decreasing deadline order (Earliest Deadline
First); each job first fills already existing segments (skipping those where
its resource demand does not fit), splitting the segment in which it finishes,
and only then appends a new segment at the end of the schedule for any
remaining work.  The result is ``None`` when some job would miss its deadline.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule, TIME_EPSILON
from repro.exceptions import SchedulingError
from repro.kernel.packmemo import usage_columns
from repro.kernel.runtime import kernel_enabled
from repro.optable.runtime import columnar_enabled

#: Remaining-ratio threshold below which a job counts as finished.
_RATIO_EPSILON = 1e-9


def pack_jobs_edf(
    problem: SchedulingProblem,
    assignment: Mapping[str, int],
    base_schedule: Schedule | None = None,
) -> Schedule | None:
    """Build mapping segments for the jobs listed in ``assignment``.

    Parameters
    ----------
    problem:
        The scheduling problem (capacity, tables, jobs, current time).
    assignment:
        Job name → configuration index.  Jobs of the problem that do not
        appear in the assignment are ignored (Algorithm 1 calls the packer
        with partial assignments while it incrementally selects
        configurations).
    base_schedule:
        Optional schedule to extend.  The default (``None``) starts from an
        empty schedule, which is what Algorithm 1 does on every call.

    Returns
    -------
    Schedule or None
        The feasible schedule, or ``None`` if some assigned job cannot meet
        its deadline with the given configurations.

    Examples
    --------
    >>> from repro.workload.motivational import motivational_problem
    >>> problem = motivational_problem("S1")
    >>> schedule = pack_jobs_edf(problem, {"sigma1": 6, "sigma2": 6})
    >>> schedule is not None
    True
    """
    if columnar_enabled() and kernel_enabled() and base_schedule is None:
        # Incremental kernel: resume from the longest placement prefix
        # shared with the activation's previous pack (bit-identical to a
        # from-scratch pack; see repro.kernel.packmemo).  Configuration
        # range checks happen at placement time there (resumed steps were
        # validated when first placed).
        return _pack_incremental(problem, assignment, problem.view().pack_memo())

    jobs = [job for job in problem.jobs if job.name in assignment]

    if columnar_enabled():
        view = problem.view()
        for job in jobs:
            config_index = assignment[job.name]
            if not 0 <= config_index < len(view.optable(job.application).times):
                raise SchedulingError(
                    f"job {job.name!r}: configuration {config_index} out of range"
                )
        return _pack_columnar(problem, assignment, jobs, base_schedule)

    for job in jobs:
        config_index = assignment[job.name]
        table = problem.table_for(job)
        if config_index not in table.indices():
            raise SchedulingError(
                f"job {job.name!r}: configuration {config_index} out of range"
            )

    schedule = base_schedule if base_schedule is not None else Schedule()
    # EDF: place jobs in non-decreasing order of their absolute deadline.
    for job in sorted(jobs, key=lambda j: (j.deadline, j.name)):
        schedule = _place_job(problem, schedule, job, assignment[job.name])
        if schedule is None:
            return None
    return schedule


def _pack_columnar(
    problem: SchedulingProblem,
    assignment: Mapping[str, int],
    jobs: list[Job],
    base_schedule: Schedule | None,
) -> Schedule | None:
    """The columnar fast path of Algorithm 2.

    Replays exactly the seed placement loop, but on a flat segment list
    ``[start, end, mappings, usage]`` with incrementally maintained
    per-cluster usage counts from the :class:`~repro.optable.table.OpTable`
    demand columns — no :class:`Schedule` re-sort per placement, no
    ``resource_usage`` re-derivation per probe, no ``ResourceVector``
    arithmetic in the inner loop.  On two-cluster platforms (the paper's
    big.LITTLE) the feasibility probe additionally runs on struct-of-arrays
    usage columns — same integer adds and compares, no record unpacking per
    probed segment.  The arithmetic (and therefore every float) is identical
    to the seed path; the equivalence tests assert it.
    """
    view = problem.view()
    capacity = view.capacity
    dimension = len(capacity)
    now = problem.now

    # Flat working segments, kept sorted by start time (disjoint intervals).
    segments: list[list] = []
    if base_schedule is not None:
        for segment in base_schedule:
            usage = [0] * dimension
            for mapping in segment:
                row = view.optable(mapping.application).resources[mapping.config_index]
                for k in range(dimension):
                    usage[k] += row[k]
            segments.append(
                [segment.start, segment.end, list(segment.mappings), usage]
            )

    two_dim = dimension == 2
    if two_dim:
        usage0, usage1 = usage_columns(segments, 2)
        cap0, cap1 = capacity[0], capacity[1]

    for job in sorted(jobs, key=lambda j: (j.deadline, j.name)):
        config_index = assignment[job.name]
        table = view.optable(job.application)
        row = table.resources[config_index]
        execution_time = table.times[config_index]
        mapping = JobMapping(job, config_index)
        remaining_ratio = job.remaining_ratio
        finish_time: float | None = None
        if two_dim:
            row0, row1 = row[0], row[1]

        index = 0
        while index < len(segments) and remaining_ratio > _RATIO_EPSILON:
            if two_dim:
                # SoA probe: the exact adds/compares of the record loop below,
                # on flat per-cluster columns.
                if usage0[index] + row0 > cap0 or usage1[index] + row1 > cap1:
                    index += 1
                    continue
                start, end, mappings, usage = segments[index]
            else:
                start, end, mappings, usage = segments[index]
                fits = True
                for k in range(dimension):
                    if usage[k] + row[k] > capacity[k]:
                        fits = False
                        break
                if not fits:
                    index += 1
                    continue

            required = execution_time * min(1.0, remaining_ratio)
            duration = end - start
            if any(m.job_name == job.name for m in mappings):
                # Same guard (and error) as the seed's ``with_mapping``: a
                # base_schedule may already map this job in the segment.
                raise SchedulingError(
                    f"job {job.name!r} is already mapped in this segment"
                )
            if required >= duration - TIME_EPSILON:
                # The job is busy for the whole segment (Alg. 2, lines 9-11).
                mappings.append(mapping)
                for k in range(dimension):
                    usage[k] += row[k]
                if two_dim:
                    usage0[index] += row0
                    usage1[index] += row1
                remaining_ratio -= duration / execution_time
                if remaining_ratio <= _RATIO_EPSILON:
                    remaining_ratio = 0.0
                    finish_time = end
                    break
                index += 1
            else:
                # The job finishes inside the segment: split it and map the
                # job only onto the first half (Alg. 2, lines 13-17).
                split_time = start + required
                if split_time <= start + TIME_EPSILON:
                    # Degenerate split: identical guard (and error) as the
                    # seed's ``MappingSegment.split_at``.
                    raise SchedulingError(
                        f"split time {split_time} outside open interval "
                        f"({start}, {end})"
                    )
                first = [
                    start,
                    split_time,
                    mappings + [mapping],
                    [usage[k] + row[k] for k in range(dimension)],
                ]
                second = [split_time, end, list(mappings), list(usage)]
                segments[index : index + 1] = [first, second]
                if two_dim:
                    base0, base1 = usage0[index], usage1[index]
                    usage0[index : index + 1] = [base0 + row0, base0]
                    usage1[index : index + 1] = [base1 + row1, base1]
                remaining_ratio = 0.0
                finish_time = split_time
                break

        if remaining_ratio > _RATIO_EPSILON:
            # Remaining work after the last existing segment (lines 19-22).
            start = max(now, segments[-1][1] if segments else now)
            required = execution_time * min(1.0, remaining_ratio)
            end = start + required
            if end <= start + TIME_EPSILON:
                # Identical guard (and error) as the seed's constructor.
                raise SchedulingError(
                    f"segment end {end} must be greater than start {start}"
                )
            segments.append([start, end, [mapping], list(row)])
            if two_dim:
                usage0.append(row0)
                usage1.append(row1)
            finish_time = end

        # Deadline check (Algorithm 2, line 23).
        if finish_time is None or finish_time > job.deadline + 1e-9:
            return None

    # The working list is sorted and disjoint by construction; materialise
    # through the trusted constructors (no re-sort, no re-validation).
    return Schedule._trusted(
        tuple(
            MappingSegment._trusted(start, end, tuple(mappings))
            for start, end, mappings, _ in segments
        )
    )


def _pack_incremental(
    problem: SchedulingProblem,
    assignment: Mapping[str, int],
    memo,
) -> Schedule | None:
    """Prefix-resumable Algorithm 2 (the incremental kernel's fast path).

    Replays exactly the placement loop of :func:`_pack_columnar`, but over a
    list of *immutable* segment records ``(start, end, mappings, usage)``
    resumed from the longest ``(job, configuration)`` placement prefix shared
    with the activation's previous pack (see
    :class:`~repro.kernel.packmemo.PackMemo`).  Placements copy-on-write only
    the records they touch, so recording one snapshot per step is a pointer
    copy.  On two-cluster platforms the feasibility probe runs on
    struct-of-arrays usage columns (same integer adds and compares as the
    record loop, derived once per pack from the resumed state).  The
    arithmetic — and therefore every float — is identical to the
    from-scratch pack; the kernel equivalence tests assert it.
    """
    view = problem.view()
    capacity = view.capacity
    dimension = len(capacity)
    now = problem.now

    # The EDF placement order of the *full* job set is a constant of the
    # activation; sorting it once and filtering preserves the exact relative
    # order a per-pack sort of the assigned subset would produce.
    edf_jobs = memo.edf_jobs
    if edf_jobs is None:
        edf_jobs = memo.edf_jobs = sorted(
            problem.jobs, key=lambda j: (j.deadline, j.name)
        )
    ordered = [job for job in edf_jobs if job.name in assignment]
    memo.packs += 1

    # Longest placement prefix shared with the previous pack, compared in
    # stride (no intermediate step list).
    recorded = memo.steps
    shared = 0
    limit = min(len(ordered), len(recorded))
    while shared < limit:
        job = ordered[shared]
        step = recorded[shared]
        if step[0] != job.name or step[1] != assignment[job.name]:
            break
        shared += 1
    segments = memo.resume(shared)
    memo.resumed_steps += shared
    # Resume-vs-fallback outcome of this pack: a non-empty shared prefix
    # resumes mid-placement, an empty one replays from scratch.  Counted on
    # the memo (plain int — this runs once per candidate probe) and rolled
    # onto the activation's phase.solve span by the admission pipeline.
    if shared:
        memo.resumed_packs += 1
    steps = memo.steps
    snapshots = memo.snapshots
    placements = memo.placements
    add = int.__add__

    two_dim = dimension == 2
    if two_dim:
        usage0, usage1 = usage_columns(segments, 2)
        cap0, cap1 = capacity[0], capacity[1]

    # Validate (and derive placement constants for) every job of the dirty
    # suffix up front, like the seed's pre-loop — so an out-of-range
    # configuration raises even when an earlier placement fails its
    # deadline first.  Prefix jobs were validated when their steps were
    # recorded; repeat probes hit the per-activation placement cache.
    for job in ordered[shared:]:
        config_index = assignment[job.name]
        placement = placements.get(job.name)
        if placement is None or placement[0] != config_index:
            table = view.optable(job.application)
            if not 0 <= config_index < len(table.times):
                raise SchedulingError(
                    f"job {job.name!r}: configuration {config_index} out of range"
                )
            placements[job.name] = (
                config_index,
                table.resources[config_index],
                table.times[config_index],
                JobMapping(job, config_index),
            )

    # The seed path re-checks per probed segment that the job is not already
    # mapped there; without a base schedule that guard is unreachable (job
    # names are unique and each job's own placement only moves forward), so
    # the incremental path drops it from the inner loop.
    for job in ordered[shared:]:
        job_name = job.name
        config_index, row, execution_time, mapping = placements[job_name]
        remaining_ratio = job.remaining_ratio
        finish_time: float | None = None
        if two_dim:
            row0, row1 = row[0], row[1]

        index = 0
        while index < len(segments) and remaining_ratio > _RATIO_EPSILON:
            if two_dim:
                # SoA probe: the exact adds/compares of the record loop below,
                # on flat per-cluster columns.
                if usage0[index] + row0 > cap0 or usage1[index] + row1 > cap1:
                    index += 1
                    continue
                start, end, mappings, usage = segments[index]
            else:
                start, end, mappings, usage = segments[index]
                fits = True
                for k in range(dimension):
                    if usage[k] + row[k] > capacity[k]:
                        fits = False
                        break
                if not fits:
                    index += 1
                    continue

            required = execution_time * min(1.0, remaining_ratio)
            duration = end - start
            if required >= duration - TIME_EPSILON:
                # The job is busy for the whole segment (Alg. 2, lines 9-11).
                segments[index] = (
                    start,
                    end,
                    mappings + (mapping,),
                    tuple(map(add, usage, row)),
                )
                if two_dim:
                    usage0[index] += row0
                    usage1[index] += row1
                remaining_ratio -= duration / execution_time
                if remaining_ratio <= _RATIO_EPSILON:
                    remaining_ratio = 0.0
                    finish_time = end
                    break
                index += 1
            else:
                # The job finishes inside the segment: split it and map the
                # job only onto the first half (Alg. 2, lines 13-17).
                split_time = start + required
                if split_time <= start + TIME_EPSILON:
                    # Identical guard (and error) as the seed paths.
                    raise SchedulingError(
                        f"split time {split_time} outside open interval "
                        f"({start}, {end})"
                    )
                first = (
                    start,
                    split_time,
                    mappings + (mapping,),
                    tuple(map(add, usage, row)),
                )
                second = (split_time, end, mappings, usage)
                segments[index : index + 1] = [first, second]
                if two_dim:
                    base0, base1 = usage0[index], usage1[index]
                    usage0[index : index + 1] = [base0 + row0, base0]
                    usage1[index : index + 1] = [base1 + row1, base1]
                remaining_ratio = 0.0
                finish_time = split_time
                break

        if remaining_ratio > _RATIO_EPSILON:
            # Remaining work after the last existing segment (lines 19-22).
            start = max(now, segments[-1][1] if segments else now)
            required = execution_time * min(1.0, remaining_ratio)
            end = start + required
            if end <= start + TIME_EPSILON:
                # Identical guard (and error) as the seed's constructor.
                raise SchedulingError(
                    f"segment end {end} must be greater than start {start}"
                )
            segments.append((start, end, (mapping,), row))
            if two_dim:
                usage0.append(row0)
                usage1.append(row1)
            finish_time = end

        memo.replayed_steps += 1
        # Deadline check (Algorithm 2, line 23).  Failed placements are not
        # recorded: a later pack sharing the failing step must re-fail it.
        if finish_time is None or finish_time > job.deadline + 1e-9:
            return None
        steps.append((job_name, config_index))
        snapshots.append(segments.copy())

    # The working list is sorted and disjoint by construction; materialise
    # through the trusted constructors (no re-sort, no re-validation).
    return Schedule._trusted(
        tuple(
            MappingSegment._trusted(start, end, mappings)
            for start, end, mappings, _ in segments
        )
    )


def _place_job(
    problem: SchedulingProblem,
    schedule: Schedule,
    job: Job,
    config_index: int,
) -> Schedule | None:
    """Place one job into the schedule (the body of Algorithm 2's outer loop)."""
    point = problem.table_for(job)[config_index]
    capacity = problem.capacity
    dimension = len(capacity)
    remaining_ratio = job.remaining_ratio
    finish_time: float | None = None

    index = 0
    while index < len(schedule) and remaining_ratio > _RATIO_EPSILON:
        segment = schedule[index]
        usage = segment.resource_usage(problem.tables, dimension)
        if not (usage + point.resources).fits_into(capacity):
            index += 1
            continue

        required = point.remaining_time(min(1.0, remaining_ratio))
        if required >= segment.duration - TIME_EPSILON:
            # The job is busy for the whole segment (Algorithm 2, lines 9-11).
            new_segment = segment.with_mapping(JobMapping(job, config_index))
            schedule = schedule.replace_segment(segment, [new_segment])
            remaining_ratio -= segment.duration / point.execution_time
            if remaining_ratio <= _RATIO_EPSILON:
                remaining_ratio = 0.0
                finish_time = new_segment.end
                break
            index += 1
        else:
            # The job finishes inside the segment: split it and map the job
            # only onto the first half (Algorithm 2, lines 13-17).
            split_time = segment.start + required
            first, second = segment.split_at(split_time)
            first = first.with_mapping(JobMapping(job, config_index))
            schedule = schedule.replace_segment(segment, [first, second])
            remaining_ratio = 0.0
            finish_time = first.end
            break

    if remaining_ratio > _RATIO_EPSILON:
        # Remaining work after the last existing segment: append a new segment
        # at the end of the schedule (Algorithm 2, lines 19-22).
        start = max(problem.now, schedule.end if len(schedule) else problem.now)
        required = point.remaining_time(min(1.0, remaining_ratio))
        new_segment = MappingSegment(
            start, start + required, [JobMapping(job, config_index)]
        )
        schedule = schedule.with_segment(new_segment)
        finish_time = new_segment.end

    # Deadline check (Algorithm 2, line 23).
    if finish_time is None or finish_time > job.deadline + 1e-9:
        return None
    return schedule
