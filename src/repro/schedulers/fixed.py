"""Fixed-mapping scheduler (the non-adaptive mapper of the motivational example).

A *fixed* mapper assigns every job one operating point and lets all jobs run
concurrently from the activation time until they individually finish: there is
no suspension and no reconfiguration, so the per-type resource demand of the
whole job set must fit the platform *simultaneously*.  This is the behaviour
of the state-of-the-art MMKP-based runtime managers the paper improves upon;
combined with the runtime manager it reproduces the schedules of Fig. 1(a)
(remapping only when an application starts) and Fig. 1(b) (remapping at starts
and finishes).

The configuration selection itself is solved exactly as a small MMKP (minimise
energy subject to the concurrent-resource constraint and the per-job deadline
check), which is affordable because a fixed mapping only ever concerns a
handful of jobs.
"""

from __future__ import annotations

from repro.core.problem import SchedulingProblem
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.knapsack import MMKPItem, MMKPProblem, solve_exact
from repro.schedulers.base import Scheduler, SchedulingResult


class FixedMinEnergyScheduler(Scheduler):
    """Energy-minimal fixed mapping (all jobs concurrently, no adaptation).

    Examples
    --------
    >>> from repro.workload.motivational import motivational_problem
    >>> result = FixedMinEnergyScheduler().schedule(motivational_problem("S1"))
    >>> result.feasible
    True
    """

    name = "fixed"

    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        jobs = sorted(problem.jobs, key=lambda j: j.name)
        capacity = problem.capacity

        # Build one MMKP group per job; only configurations that meet the
        # deadline when running uninterruptedly from now are admissible.
        groups = []
        group_labels: list[list[int]] = []
        for job in jobs:
            table = problem.table_for(job)
            budget = job.deadline - problem.now
            items = []
            labels = []
            for index, point in enumerate(table):
                if not point.resources.fits_into(capacity):
                    continue
                if point.remaining_time(job.remaining_ratio) > budget + 1e-9:
                    continue
                items.append(
                    MMKPItem(
                        value=-point.remaining_energy(job.remaining_ratio),
                        weights=tuple(float(c) for c in point.resources),
                        label=index,
                    )
                )
                labels.append(index)
            if not items:
                return SchedulingResult(schedule=None, statistics={"groups": len(jobs)})
            groups.append(items)
            group_labels.append(labels)

        mmkp = MMKPProblem([float(c) for c in capacity], groups)
        solution = solve_exact(mmkp)
        if not solution.feasible:
            return SchedulingResult(
                schedule=None, statistics={"nodes": solution.iterations}
            )

        assignment = {
            job.name: group_labels[group_index][item_index]
            for group_index, (job, item_index) in enumerate(zip(jobs, solution.selection))
        }
        schedule = self._build_schedule(problem, assignment)
        return SchedulingResult(
            schedule=schedule,
            assignment=assignment,
            energy=problem.energy_of(schedule),
            statistics={"nodes": solution.iterations},
        )

    @staticmethod
    def _build_schedule(
        problem: SchedulingProblem, assignment: dict[str, int]
    ) -> Schedule:
        """Turn concurrent fixed mappings into mapping segments.

        All jobs start at ``now``; segment boundaries are the distinct job
        completion times.
        """
        completions = {}
        for job in problem.jobs:
            point = problem.table_for(job)[assignment[job.name]]
            completions[job.name] = problem.now + point.remaining_time(
                job.remaining_ratio
            )
        boundaries = sorted(set(completions.values()))

        segments = []
        previous = problem.now
        for boundary in boundaries:
            if boundary <= previous + 1e-12:
                continue
            mappings = [
                JobMapping(job, assignment[job.name])
                for job in problem.jobs
                if completions[job.name] > previous + 1e-12
            ]
            segments.append(MappingSegment(previous, boundary, mappings))
            previous = boundary
        return Schedule(segments)
