"""Concurrent batch execution of runtime-manager simulations.

:class:`SimulationService` turns a :class:`~repro.service.jobs.BatchSpec`
into a :class:`BatchResults`: every job is materialised, simulated by its own
:class:`~repro.runtime.manager.RuntimeManager` (with an optional shared
:class:`~repro.service.cache.ActivationCache`) and summarised into a
picklable :class:`SimulationResult`.  Three executors are available:

* ``"serial"`` — run in the calling thread (the ``workers=1`` default);
* ``"thread"`` — a thread pool sharing one activation cache, so repeated
  activations *across* traces hit;
* ``"process"`` — a process pool for CPU parallelism; each worker keeps a
  process-local cache (cache statistics are not aggregated in this mode);
* ``"cluster"`` — the :class:`~repro.cluster.ShardCoordinator`: the batch is
  split into work units executed by a process pool with work stealing and
  bounded shard retry.

A service may additionally be bound to a persistent
:class:`~repro.store.ContentStore` (``store=`` or the ``REPRO_STORE``
environment variable): the activation cache and kernel caches become
store-backed, process workers reopen the store by path, and warm reruns
start from every entry previous runs persisted.  With no store configured
(or ``REPRO_STORE=0``) behaviour is bit-identical to the store-less code.

Determinism guarantee
---------------------
Results are returned in job order and every simulation is a pure function of
its declarative spec: per-job trace seeds, canonical activation caching (the
cached and uncached paths produce bit-identical schedules) and fresh
scheduler instances per job mean that a batch produces **bit-identical
deterministic results for any worker count and any executor** — aggregate
fingerprints for ``workers=1`` and ``workers=4`` match exactly.  Wall-clock
fields (``search_time_total``, ``wall_time``) are the only exception and are
excluded from :meth:`BatchResults.fingerprint`.

Failure isolation: an exception inside one simulation is captured as that
job's ``error`` string; the rest of the batch is unaffected.
"""

from __future__ import annotations

import contextvars
import hashlib
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.analysis.experiments import SchedulerRun, SuiteResults
from repro.analysis.stats import BoxplotStats
from repro.api.registry import governors as _governors
from repro.api.registry import schedulers as _schedulers
from repro.energy.budget import EnergyBudget
from repro.exceptions import WorkloadError
from repro.kernel.caches import KernelCaches
from repro.runtime.log import ExecutionLog, RequestOutcome
from repro.runtime.manager import RuntimeManager
from repro.service.cache import ActivationCache, CachingScheduler
from repro.service.jobs import BatchSpec, SimulationJob
from repro.service.metrics import ServiceMetrics
from repro.store.bindings import store_backed_activation_cache, store_backed_caches
from repro.store.content import ContentStore, resolve_store

#: Executor names accepted by :class:`SimulationService`.
EXECUTORS = ("auto", "serial", "thread", "process", "cluster")


@dataclass(frozen=True)
class SimulationResult:
    """The summarised outcome of one simulated trace.

    All fields are plain data, so results cross process boundaries and
    serialise cheaply.  ``search_time_total`` and ``wall_time`` are
    wall-clock measurements and therefore vary between runs; every other
    field is deterministic given the job spec.
    """

    job_name: str
    scheduler: str
    engine: str
    requests: int = 0
    accepted: int = 0
    rejected: int = 0
    total_energy: float = 0.0
    makespan: float = 0.0
    activations: int = 0
    search_time_total: float = 0.0
    wall_time: float = 0.0
    outcomes: tuple[RequestOutcome, ...] = ()
    #: Per-cluster ``(name, busy J, idle J)`` triples, sorted by name (empty
    #: when the job ran on a bare capacity vector or with accounting off).
    cluster_energy: tuple[tuple[str, float, float], ...] = ()
    #: Requests rejected by the power-cap / energy-budget admission control.
    budget_rejections: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        """``True`` iff the simulation completed without an error."""
        return self.error is None

    @property
    def acceptance_rate(self) -> float:
        """Fraction of admitted requests (1.0 for an empty trace)."""
        return self.accepted / self.requests if self.requests else 1.0

    @classmethod
    def from_log(
        cls, job: SimulationJob, log: ExecutionLog, wall_time: float
    ) -> "SimulationResult":
        """Summarise one finished :class:`ExecutionLog`."""
        return cls(
            job_name=job.name,
            scheduler=job.scheduler,
            engine=job.engine,
            requests=len(log.outcomes),
            accepted=len(log.accepted),
            rejected=len(log.rejected),
            total_energy=log.total_energy,
            makespan=log.makespan,
            activations=log.activations,
            search_time_total=sum(o.scheduler_time for o in log.outcomes),
            wall_time=wall_time,
            outcomes=tuple(log.outcomes),
            cluster_energy=tuple(
                (name, entry["busy"], entry["idle"])
                for name, entry in sorted(log.cluster_energy.items())
            ),
            budget_rejections=log.budget_rejections,
        )

    @classmethod
    def from_error(cls, job: SimulationJob, message: str) -> "SimulationResult":
        """Record a failed simulation (failure isolation)."""
        return cls(
            job_name=job.name,
            scheduler=job.scheduler,
            engine=job.engine,
            error=message,
        )

    def fingerprint_key(self) -> tuple:
        """The deterministic identity of the result (no wall-clock fields)."""
        return (
            self.job_name,
            self.scheduler,
            self.engine,
            self.requests,
            self.accepted,
            self.rejected,
            repr(self.total_energy),
            repr(self.makespan),
            self.activations,
            self.error,
            tuple(
                (
                    o.name,
                    o.application,
                    repr(o.arrival),
                    repr(o.deadline),
                    o.accepted,
                    repr(o.completion_time),
                )
                for o in self.outcomes
            ),
        )


class BatchResults:
    """The ordered results of one batch run plus aggregate views."""

    def __init__(self, results: Sequence[SimulationResult]):
        self._results = tuple(results)

    @property
    def results(self) -> tuple[SimulationResult, ...]:
        """All results, in job order."""
        return self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[SimulationResult]:
        return iter(self._results)

    def __getitem__(self, index: int) -> SimulationResult:
        return self._results[index]

    def result(self, job_name: str) -> SimulationResult:
        """The result of the named job."""
        for entry in self._results:
            if entry.job_name == job_name:
                return entry
        raise WorkloadError(f"no result for job {job_name!r}")

    @property
    def ok(self) -> list[SimulationResult]:
        """Results of simulations that completed."""
        return [r for r in self._results if r.ok]

    @property
    def failures(self) -> list[SimulationResult]:
        """Results of simulations that raised (failure isolation)."""
        return [r for r in self._results if not r.ok]

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self) -> dict:
        """Batch-level totals (sums in job order, hence deterministic)."""
        ok = self.ok
        requests = sum(r.requests for r in ok)
        accepted = sum(r.accepted for r in ok)
        return {
            "traces": len(self._results),
            "failed": len(self.failures),
            "requests": requests,
            "accepted": accepted,
            "rejected": sum(r.rejected for r in ok),
            "acceptance_rate": accepted / requests if requests else 1.0,
            "total_energy": sum(r.total_energy for r in ok),
            "activations": sum(r.activations for r in ok),
            "search_time_total": sum(r.search_time_total for r in ok),
            "budget_rejections": sum(r.budget_rejections for r in ok),
        }

    def cluster_energy(self) -> dict[str, dict[str, float]]:
        """Per-cluster busy/idle/total joules summed over all completed traces."""
        merged: dict[str, dict[str, float]] = {}
        for result in self.ok:
            for name, busy, idle in result.cluster_energy:
                entry = merged.setdefault(
                    name, {"busy": 0.0, "idle": 0.0, "total": 0.0}
                )
                entry["busy"] += busy
                entry["idle"] += idle
                entry["total"] += busy + idle
        return merged

    def fingerprint(self) -> str:
        """A SHA-256 digest of every deterministic result field.

        Two batch runs with the same specs and seeds produce the same
        fingerprint regardless of worker count, executor or caching.
        """
        digest = hashlib.sha256()
        for result in self._results:
            digest.update(repr(result.fingerprint_key()).encode("utf-8"))
        return digest.hexdigest()

    def search_time_stats(self) -> BoxplotStats:
        """Box-plot statistics of the per-trace cumulative scheduler time."""
        samples = [r.search_time_total for r in self.ok]
        return BoxplotStats.from_samples(samples)

    # ------------------------------------------------------------------ #
    # Bridges into the existing analysis structures
    # ------------------------------------------------------------------ #
    def to_scheduler_runs(self) -> list[SchedulerRun]:
        """One :class:`SchedulerRun` per trace, for the analysis helpers.

        Online traces have no deadline level, so ``deadline_level`` is
        ``None``; ``feasible`` records whether the simulation completed and
        ``energy``/``search_time`` carry the per-trace totals.
        """
        return [
            SchedulerRun(
                case_name=r.job_name,
                num_jobs=r.requests,
                deadline_level=None,
                scheduler=r.scheduler,
                feasible=r.ok,
                energy=r.total_energy if r.ok else float("inf"),
                search_time=r.search_time_total,
            )
            for r in self._results
        ]

    def to_suite_results(self) -> SuiteResults:
        """Wrap the per-trace runs in a :class:`SuiteResults` for reporting."""
        return SuiteResults(self.to_scheduler_runs())

    def to_dict(self) -> dict:
        """Serialise the batch results (summaries, not full timelines)."""
        return {
            "aggregate": self.aggregate(),
            "fingerprint": self.fingerprint(),
            "results": [
                {
                    "job_name": r.job_name,
                    "scheduler": r.scheduler,
                    "engine": r.engine,
                    "requests": r.requests,
                    "accepted": r.accepted,
                    "rejected": r.rejected,
                    "total_energy": r.total_energy,
                    "makespan": r.makespan,
                    "activations": r.activations,
                    "search_time_total": r.search_time_total,
                    "wall_time": r.wall_time,
                    "cluster_energy": {
                        name: {"busy": busy, "idle": idle, "total": busy + idle}
                        for name, busy, idle in r.cluster_energy
                    },
                    "budget_rejections": r.budget_rejections,
                    "error": r.error,
                }
                for r in self._results
            ],
        }


def _simulate(
    job: SimulationJob,
    cache: ActivationCache | None,
    kernel_caches: KernelCaches | None = None,
) -> SimulationResult:
    """Materialise and run one job, capturing any failure in the result."""
    start = time.perf_counter()
    try:
        tables = job.resolve_tables()
        platform = job.resolve_platform()
        scheduler = _schedulers.build(job.scheduler)
        if cache is not None:
            scheduler = CachingScheduler(scheduler, cache)
        trace = job.resolve_trace(tables)
        governor = (
            _governors.build(job.governor) if job.governor is not None else None
        )
        budget = None
        if job.power_cap_watts is not None or job.energy_budget_joules is not None:
            budget = EnergyBudget(
                power_cap_watts=job.power_cap_watts,
                energy_budget_joules=job.energy_budget_joules,
            )
        manager = RuntimeManager.from_components(
            platform,
            tables,
            scheduler,
            remap_on_finish=job.remap_on_finish,
            engine=job.engine,
            governor=governor,
            budget=budget,
            kernel_caches=kernel_caches,
        )
        log = manager.run(trace)
    except Exception as error:  # noqa: BLE001 — failure isolation by design
        return SimulationResult.from_error(job, f"{type(error).__name__}: {error}")
    return SimulationResult.from_log(job, log, time.perf_counter() - start)


#: Per-process activation cache for the ``"process"`` executor, keyed by the
#: configured size; initialised lazily in each worker process.
_PROCESS_CACHE: ActivationCache | None = None
_PROCESS_CACHE_SIZE: int = 0
#: Per-process incremental-kernel warm starts (content-keyed, so sharing
#: across the heterogeneous jobs of one worker process is always sound).
_PROCESS_KERNEL_CACHES: KernelCaches | None = None
#: Per-process content store, reopened from the parent's path token.  A
#: SQLite store crosses the process boundary by *path*, not by object —
#: each worker opens its own connection (see repro.store.backend).
_PROCESS_STORE: ContentStore | None = None
_PROCESS_STORE_TOKEN: str | None = None


def _process_store(store_token: str | None) -> ContentStore | None:
    """The worker-process store for ``store_token`` (rebinding on change)."""
    global _PROCESS_STORE, _PROCESS_STORE_TOKEN
    if store_token != _PROCESS_STORE_TOKEN or (
        store_token is not None and _PROCESS_STORE is None
    ):
        # resolve_store re-applies the REPRO_STORE escape hatch, so a
        # worker inheriting REPRO_STORE=0 stays store-less no matter what
        # token the parent sends.
        _PROCESS_STORE = resolve_store(store_token) if store_token else None
        _PROCESS_STORE_TOKEN = store_token
        from repro.optable.table import bind_intern_store

        bind_intern_store(_PROCESS_STORE)
    return _PROCESS_STORE


def _process_simulate(
    job_data: Mapping, cache_size: int, store_token: str | None = None
) -> SimulationResult:
    """Worker-process entry point: rebuild the job and simulate it."""
    global _PROCESS_CACHE, _PROCESS_CACHE_SIZE, _PROCESS_KERNEL_CACHES
    store = _process_store(store_token)
    cache = None
    if cache_size > 0:
        if (
            _PROCESS_CACHE is None
            or _PROCESS_CACHE_SIZE != cache_size
            or getattr(_PROCESS_CACHE, "store", None) is not store
        ):
            _PROCESS_CACHE = store_backed_activation_cache(store, cache_size)
            _PROCESS_CACHE_SIZE = cache_size
        cache = _PROCESS_CACHE
    if (
        _PROCESS_KERNEL_CACHES is None
        or getattr(_PROCESS_KERNEL_CACHES, "store", None) is not store
    ):
        _PROCESS_KERNEL_CACHES = store_backed_caches(store)
    return _simulate(SimulationJob.from_dict(job_data), cache, _PROCESS_KERNEL_CACHES)


def _process_run_unit(
    job_datas: Sequence[Mapping], cache_size: int, store_token: str | None = None
) -> list[SimulationResult]:
    """Worker-process entry point for one shard (see :mod:`repro.cluster`)."""
    return [
        _process_simulate(job_data, cache_size, store_token)
        for job_data in job_datas
    ]


class SimulationService:
    """Run batches of runtime-manager simulations with fan-out and caching.

    Parameters
    ----------
    workers:
        Worker count.  ``1`` runs serially in the calling thread.
    executor:
        ``"auto"`` (serial for one worker, threads otherwise), ``"serial"``,
        ``"thread"`` or ``"process"``.
    use_cache:
        Enable the shared activation cache (see :mod:`repro.service.cache`).
    cache_size:
        Maximum cached activations (per service, or per worker process for
        the ``"process"`` executor).
    metrics:
        An existing :class:`ServiceMetrics` registry to record into; a fresh
        one is created when omitted.
    store:
        A persistent :class:`~repro.store.ContentStore` (or a path for a
        SQLite-backed one) shared by the activation cache, the kernel
        caches and — in ``"process"``/``"cluster"`` mode — every worker
        process.  ``None`` (the default) keeps all caches process-local;
        the ``REPRO_STORE`` environment variable can opt in (a path) or
        force-disable (``0``) regardless of this argument.

    Examples
    --------
    >>> from repro.service.jobs import BatchSpec
    >>> spec = BatchSpec.sweep(arrival_rates=[0.2], traces_per_point=3,
    ...                        num_requests=3)
    >>> service = SimulationService(workers=1)
    >>> results = service.run_batch(spec)
    >>> len(results)
    3
    >>> results.failures
    []
    """

    def __init__(
        self,
        workers: int = 1,
        executor: str = "auto",
        use_cache: bool = True,
        cache_size: int = 4096,
        metrics: ServiceMetrics | None = None,
        kernel_caches: KernelCaches | None = None,
        store: "ContentStore | str | None" = None,
    ):
        if workers < 1:
            raise WorkloadError(f"worker count must be positive, got {workers}")
        if executor not in EXECUTORS:
            raise WorkloadError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.workers = workers
        self.executor = executor
        self.use_cache = use_cache
        self.cache_size = cache_size
        self.store = resolve_store(store)
        self.cache = (
            store_backed_activation_cache(self.store, cache_size)
            if use_cache
            else None
        )
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Shard statistics of the most recent ``"cluster"`` batch.
        self.cluster_stats = None
        #: Incremental-kernel warm starts shared by every job of every batch
        #: this service runs (content-keyed, hence safe across heterogeneous
        #: jobs): capacity-fitting table slices, MMKP-LR relaxations, EX-MEM
        #: candidate columns.  Callers may inject one to pool across
        #: services/sessions.
        self.kernel_caches = (
            kernel_caches
            if kernel_caches is not None
            else store_backed_caches(self.store)
        )

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: BatchSpec | Sequence[SimulationJob],
        progress: Callable[[int, SimulationResult], None] | None = None,
    ) -> BatchResults:
        """Simulate every job of the batch and return ordered results.

        ``progress`` (if given) is called as ``progress(index, result)`` from
        the coordinating thread whenever a job completes — completion order,
        not job order.  The returned results are always in job order.
        """
        jobs = list(batch.jobs if isinstance(batch, BatchSpec) else batch)
        if not jobs:
            return BatchResults(())
        executor = self.executor
        if executor == "auto":
            executor = "serial" if self.workers == 1 else "thread"

        cache_before = self.cache.info() if self.cache is not None else None
        if executor == "serial":
            results = self._run_serial(jobs, progress)
        elif executor == "thread":
            results = self._run_threads(jobs, progress)
        elif executor == "cluster":
            results = self._run_cluster(jobs, progress)
        else:
            results = self._run_processes(jobs, progress)

        for result in results:
            self.metrics.observe_result(result)
        if self.cache is not None and executor not in ("process", "cluster"):
            after = self.cache.info()
            self.metrics.observe_cache(
                {
                    "hits": after["hits"] - cache_before["hits"],
                    "misses": after["misses"] - cache_before["misses"],
                }
            )
        return BatchResults(results)

    def _run_serial(self, jobs, progress) -> list[SimulationResult]:
        results = []
        for index, job in enumerate(jobs):
            result = _simulate(job, self.cache, self.kernel_caches)
            results.append(result)
            if progress is not None:
                progress(index, result)
        return results

    def _run_threads(self, jobs, progress) -> list[SimulationResult]:
        results: list[SimulationResult | None] = [None] * len(jobs)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            # Each job runs inside a copy of the submitting thread's
            # contextvars context, so context-propagated state (a repro.obs
            # tracer) follows the simulations onto the pool threads.
            futures = {
                pool.submit(
                    contextvars.copy_context().run,
                    _simulate,
                    job,
                    self.cache,
                    self.kernel_caches,
                ): index
                for index, job in enumerate(jobs)
            }
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if progress is not None:
                    progress(index, results[index])
        return results

    def _run_processes(self, jobs, progress) -> list[SimulationResult]:
        cache_size = self.cache_size if self.use_cache else 0
        token = self.store.process_token() if self.store is not None else None
        results: list[SimulationResult | None] = [None] * len(jobs)
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(
                    _process_simulate, job.to_dict(), cache_size, token
                ): index
                for index, job in enumerate(jobs)
            }
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                if progress is not None:
                    progress(index, results[index])
        return results

    def _run_cluster(self, jobs, progress) -> list[SimulationResult]:
        # Imported lazily: repro.cluster imports this module.
        from repro.cluster.coordinator import ShardCoordinator

        coordinator = ShardCoordinator(
            self.workers,
            mode="process",
            cache_size=self.cache_size if self.use_cache else 0,
            store=self.store,
        )
        results = coordinator.run(jobs, progress)
        self.cluster_stats = coordinator.stats
        return results

    def __repr__(self) -> str:
        return (
            f"SimulationService(workers={self.workers}, executor={self.executor!r}, "
            f"cache={'on' if self.use_cache else 'off'})"
        )
