"""Counters and histograms for the batch-simulation service.

The service records how a batch behaved — traces simulated, requests
accepted, scheduler activations, cache effectiveness, energy — in a
:class:`ServiceMetrics` registry.  :meth:`ServiceMetrics.snapshot` returns a
plain dictionary (JSON-ready) and :meth:`ServiceMetrics.format` renders the
text block the ``repro-rm batch`` CLI prints after a run.

All mutators are thread-safe so a single registry can be shared by every
worker of a :class:`~repro.service.pool.SimulationService`.

:func:`prometheus_lines` renders any collection of counters and histograms
in the Prometheus text exposition format; the gateway's ``GET /metrics``
endpoint serves :meth:`ServiceMetrics.to_prometheus` output concatenated
with its own daemon-level series.
"""

from __future__ import annotations

import random
import threading
from typing import Iterable, Mapping


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot add negative {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value


class Histogram:
    """A streaming histogram keeping summary statistics and sampled values.

    Beyond ``max_samples`` observations the sample set is maintained by
    reservoir sampling (Vitter's Algorithm R), so percentiles describe the
    *whole* observation stream uniformly — not just the first N values, which
    would bias p50/p90/p99 toward early traces on long runs.  The reservoir's
    RNG is seeded deterministically from the histogram name, so identical
    observation sequences reproduce identical percentiles across processes.
    count/sum/min/max stay exact regardless of the cap.
    """

    def __init__(self, name: str, description: str = "", max_samples: int = 100_000):
        self.name = name
        self.description = description
        self._max_samples = max_samples
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()
        self._reservoir = random.Random(name)

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                # Algorithm R: keep each of the _count observations seen so
                # far in the reservoir with probability max_samples/_count.
                slot = self._reservoir.randrange(self._count)
                if slot < self._max_samples:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        """Number of observed samples."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed samples."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (NaN when empty)."""
        return self._total / self._count if self._count else float("nan")

    @property
    def min(self) -> float:
        """Smallest observed sample (NaN when empty)."""
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        """Largest observed sample (NaN when empty)."""
        return self._max if self._count else float("nan")

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (nearest-rank) of the stored samples."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
        with self._lock:
            if not self._samples:
                return float("nan")
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict[str, float]:
        """Count, sum, mean, min/max and the common percentiles."""
        return {
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and line feed are the three characters the spec
    requires escaping inside quoted label values.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help_text(text) -> str:
    """Escape HELP text per the Prometheus text exposition format.

    HELP lines escape backslash and line feed only (quotes are legal there).
    """
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def prometheus_lines(
    counters: Iterable[Counter] = (),
    histograms: Iterable[Histogram] = (),
    *,
    prefix: str = "repro",
    labels: Mapping[str, str] | None = None,
) -> list[str]:
    """Render counters and histograms in Prometheus text exposition format.

    Histograms are exported as summaries: ``_count``/``_sum`` series plus
    ``quantile``-labelled gauges for p50/p90/p99.  Empty histograms emit
    only their count (quantiles of nothing are NaN, which scrapers dislike).
    """
    tag = _prom_labels(labels)
    lines: list[str] = []
    for counter in counters:
        name = f"{prefix}_{counter.name}"
        if counter.description:
            lines.append(f"# HELP {name} {escape_help_text(counter.description)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}{tag} {counter.value:g}")
    for histogram in histograms:
        name = f"{prefix}_{histogram.name}"
        if histogram.description:
            lines.append(f"# HELP {name} {escape_help_text(histogram.description)}")
        lines.append(f"# TYPE {name} summary")
        lines.append(f"{name}_count{tag} {histogram.count}")
        lines.append(f"{name}_sum{tag} {histogram.total:g}")
        if histogram.count:
            for fraction in (0.5, 0.9, 0.99):
                quantile = dict(labels or {})
                quantile["quantile"] = f"{fraction:g}"
                lines.append(
                    f"{name}{_prom_labels(quantile)} "
                    f"{histogram.percentile(fraction):g}"
                )
    return lines


def prometheus_grouped_lines(
    name: str,
    description: str,
    grouped: Mapping[str, "Histogram | float | int"],
    *,
    prefix: str = "repro",
    label: str = "phase",
    metric_type: str = "summary",
) -> list[str]:
    """One metric whose series are distinguished by a label.

    ``grouped`` maps label values (e.g. phase names) to histograms; unlike
    calling :func:`prometheus_lines` per histogram, the shared metric name
    gets exactly one HELP/TYPE header — duplicated headers are invalid in
    the text exposition format.

    With ``metric_type`` set to ``"counter"`` or ``"gauge"``, the mapping
    values are plain numbers and each label value becomes one sample line —
    the shape the store's per-kind hit/miss/byte counters (``repro_store_*``)
    are exported in.
    """
    full = f"{prefix}_{name}"
    lines: list[str] = []
    if grouped:
        if description:
            lines.append(f"# HELP {full} {escape_help_text(description)}")
        lines.append(f"# TYPE {full} {metric_type}")
    for value, entry in sorted(grouped.items()):
        tag = _prom_labels({label: value})
        if metric_type != "summary":
            lines.append(f"{full}{tag} {entry:g}")
            continue
        lines.append(f"{full}_count{tag} {entry.count}")
        lines.append(f"{full}_sum{tag} {entry.total:g}")
        if entry.count:
            for fraction in (0.5, 0.9, 0.99):
                quantile = _prom_labels({label: value, "quantile": f"{fraction:g}"})
                lines.append(f"{full}{quantile} {entry.percentile(fraction):g}")
    return lines


class ServiceMetrics:
    """The metric registry of one :class:`~repro.service.pool.SimulationService`.

    Counters
    --------
    ``traces_run`` / ``traces_failed``
        Simulations completed / aborted by an error (failure isolation).
    ``requests_total`` / ``requests_accepted`` / ``requests_rejected``
        Admission outcomes summed over all traces.
    ``activations``
        Scheduler activations summed over all traces.
    ``cache_hits`` / ``cache_misses``
        Activation-cache statistics (zero when caching is disabled).

    ``budget_rejections``
        Requests turned away by the power-cap / energy-budget admission
        control (a subset of ``requests_rejected``).

    Histograms
    ----------
    ``trace_energy``
        Total consumed energy per trace (J).
    ``request_energy``
        Energy attributed to each admitted request (J).
    ``trace_search_time``
        Cumulative scheduler search time per trace (s).
    ``trace_wall_time``
        Wall-clock simulation time per trace (s).
    """

    def __init__(self) -> None:
        self.traces_run = Counter("traces_run", "simulations completed")
        self.traces_failed = Counter("traces_failed", "simulations failed")
        self.requests_total = Counter("requests_total", "requests simulated")
        self.requests_accepted = Counter("requests_accepted", "requests admitted")
        self.requests_rejected = Counter("requests_rejected", "requests rejected")
        self.activations = Counter("activations", "scheduler activations")
        self.cache_hits = Counter("cache_hits", "activation cache hits")
        self.cache_misses = Counter("cache_misses", "activation cache misses")
        self.budget_rejections = Counter(
            "budget_rejections", "requests rejected by the energy budget"
        )
        self.trace_energy = Histogram("trace_energy", "energy per trace (J)")
        self.request_energy = Histogram(
            "request_energy", "energy per admitted request (J)"
        )
        self.trace_search_time = Histogram(
            "trace_search_time", "scheduler time per trace (s)"
        )
        self.trace_wall_time = Histogram(
            "trace_wall_time", "wall-clock time per trace (s)"
        )

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def observe_result(self, result) -> None:
        """Record one :class:`~repro.service.pool.SimulationResult`."""
        if result.error is not None:
            self.traces_failed.increment()
            return
        self.traces_run.increment()
        self.requests_total.increment(result.requests)
        self.requests_accepted.increment(result.accepted)
        self.requests_rejected.increment(result.rejected)
        self.activations.increment(result.activations)
        self.budget_rejections.increment(result.budget_rejections)
        self.trace_energy.observe(result.total_energy)
        for outcome in result.outcomes:
            if outcome.accepted:
                self.request_energy.observe(outcome.energy)
        self.trace_search_time.observe(result.search_time_total)
        self.trace_wall_time.observe(result.wall_time)

    def observe_cache(self, info: Mapping[str, float]) -> None:
        """Fold an :meth:`~repro.service.cache.ActivationCache.info` snapshot in."""
        self.cache_hits.increment(info.get("hits", 0))
        self.cache_misses.increment(info.get("misses", 0))

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def acceptance_rate(self) -> float:
        """Overall fraction of admitted requests (1.0 when nothing ran)."""
        total = self.requests_total.value
        return self.requests_accepted.value / total if total else 1.0

    @property
    def cache_hit_rate(self) -> float:
        """Overall activation-cache hit rate (0.0 when caching is off)."""
        total = self.cache_hits.value + self.cache_misses.value
        return self.cache_hits.value / total if total else 0.0

    def snapshot(self) -> dict:
        """A JSON-ready dictionary of every counter and histogram."""
        return {
            "counters": {
                counter.name: counter.value
                for counter in (
                    self.traces_run,
                    self.traces_failed,
                    self.requests_total,
                    self.requests_accepted,
                    self.requests_rejected,
                    self.activations,
                    self.cache_hits,
                    self.cache_misses,
                    self.budget_rejections,
                )
            },
            "derived": {
                "acceptance_rate": self.acceptance_rate,
                "cache_hit_rate": self.cache_hit_rate,
            },
            "histograms": {
                histogram.name: histogram.summary()
                for histogram in (
                    self.trace_energy,
                    self.request_energy,
                    self.trace_search_time,
                    self.trace_wall_time,
                )
            },
        }

    def to_prometheus(self, *, prefix: str = "repro_service") -> str:
        """The registry in Prometheus text exposition format."""
        lines = prometheus_lines(
            (
                self.traces_run,
                self.traces_failed,
                self.requests_total,
                self.requests_accepted,
                self.requests_rejected,
                self.activations,
                self.cache_hits,
                self.cache_misses,
                self.budget_rejections,
            ),
            (
                self.trace_energy,
                self.request_energy,
                self.trace_search_time,
                self.trace_wall_time,
            ),
            prefix=prefix,
        )
        return "\n".join(lines) + "\n"

    def format(self) -> str:
        """Render the snapshot as the text block printed by the CLI."""
        snap = self.snapshot()
        lines = ["service metrics"]
        for name, value in snap["counters"].items():
            lines.append(f"  {name:20s} {value:12.0f}")
        lines.append(f"  {'acceptance_rate':20s} {self.acceptance_rate * 100:11.1f}%")
        lines.append(f"  {'cache_hit_rate':20s} {self.cache_hit_rate * 100:11.1f}%")
        for name, summary in snap["histograms"].items():
            if not summary["count"]:
                continue
            lines.append(
                f"  {name:20s} mean={summary['mean']:.4g} "
                f"p50={summary['p50']:.4g} p90={summary['p90']:.4g} "
                f"max={summary['max']:.4g}"
            )
        return "\n".join(lines)
