"""``repro.service`` — concurrent batch simulation on top of the runtime manager.

The seed reproduction runs one :class:`~repro.runtime.trace.RequestTrace` at
a time through a single :class:`~repro.runtime.manager.RuntimeManager`.  This
package scales that into a *service*: declarative batches of thousands of
simulations, executed concurrently, with repeated scheduler activations
served from a cache.

Modules
-------
* :mod:`repro.service.events` — heap-based :class:`EventQueue`
  (arrival/finish/segment-boundary/timer events); the runtime manager's
  default ``"events"`` time-advance engine is driven by it.
* :mod:`repro.service.jobs` — :class:`SimulationJob` / :class:`BatchSpec`:
  declarative, JSON-serialisable descriptions of simulations (trace or
  generator spec + platform + tables + scheduler + seed) with sweep and
  shard helpers.
* :mod:`repro.service.cache` — :class:`ActivationCache` /
  :class:`CachingScheduler`: an LRU over canonical scheduling-problem
  signatures, so structurally identical activations across traces are solved
  once.
* :mod:`repro.service.pool` — :class:`SimulationService`: serial, threaded or
  multi-process fan-out with per-job seeding, failure isolation and ordered,
  bit-reproducible results.
* :mod:`repro.service.metrics` — :class:`ServiceMetrics`: counters and
  histograms (acceptance rate, search time, energy, cache hit rate) with a
  ``snapshot()`` the CLI prints.

Usage
-----

Describe a batch declaratively, then run it::

    from repro.service import BatchSpec, SimulationService

    spec = BatchSpec.sweep(
        arrival_rates=[0.1, 0.2, 0.4],
        schedulers=["mmkp-mdf", "mmkp-lr"],
        traces_per_point=25,
        num_requests=10,
    )
    spec.save("sweep.json")                      # shareable, shardable

    service = SimulationService(workers=4)
    results = service.run_batch(BatchSpec.load("sweep.json"))
    print(results.aggregate()["acceptance_rate"])
    print(service.metrics.format())

Determinism guarantees
----------------------
Every job carries its own trace seed and activation caching is *canonical*
(cached and uncached paths return bit-identical schedules), so a batch yields
the same :meth:`~repro.service.pool.BatchResults.fingerprint` for any worker
count and executor.  Wall-clock fields are excluded from the fingerprint.

Cache semantics
---------------
Cache keys are canonical problem signatures — capacity, table content
fingerprints, sorted job residuals and *relative* deadlines, scheduler name —
so hits are exact modulo a time shift and request renaming.  One cache is
shared across all traces of a batch (per worker process under the
``"process"`` executor).

The corresponding CLI entry point is ``repro-rm batch`` (see
:mod:`repro.cli`).
"""

from repro.service.cache import ActivationCache, CachingScheduler
from repro.service.events import Event, EventKind, EventQueue
from repro.service.metrics import Counter, Histogram, ServiceMetrics

__all__ = [
    "ActivationCache",
    "CachingScheduler",
    "Event",
    "EventKind",
    "EventQueue",
    "Counter",
    "Histogram",
    "ServiceMetrics",
    # Lazily loaded (they depend on repro.runtime, which imports this package):
    "SimulationJob",
    "TraceSpec",
    "BatchSpec",
    "SimulationService",
    "SimulationResult",
    "BatchResults",
]

#: Lazy attribute → defining submodule.  ``repro.runtime.manager`` imports
#: ``repro.service.events`` while ``jobs``/``pool`` import the runtime
#: manager, so importing those eagerly here would create an import cycle.
_LAZY = {
    "SimulationJob": "repro.service.jobs",
    "TraceSpec": "repro.service.jobs",
    "BatchSpec": "repro.service.jobs",
    "SimulationService": "repro.service.pool",
    "SimulationResult": "repro.service.pool",
    "BatchResults": "repro.service.pool",
}

from repro._lazy import lazy_attributes

__getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
