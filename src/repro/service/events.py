"""Heap-based event engine for discrete-event simulation.

The seed runtime manager advanced simulated time by linearly scanning the
committed schedule for the next segment boundary.  The :class:`EventQueue`
replaces that scan with a binary heap of timestamped :class:`Event` objects —
request arrivals, segment boundaries, job finishes and user timers — so that
selecting the next time step is ``O(log n)`` regardless of how many segments
or pending requests exist.

Events at equal times are ordered by :class:`EventKind` priority (finishes and
segment boundaries before arrivals, arrivals before timers) and, within one
kind, by insertion order, which makes the processing order fully
deterministic.  Stale events from superseded schedules are handled by *lazy
invalidation*: producers tag schedule-derived events with an epoch counter and
simply skip popped events whose epoch no longer matches, instead of paying
``O(n)`` to delete them from the heap.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


class EventKind(enum.IntEnum):
    """Kinds of simulation events, in ascending same-time processing order.

    The integer value doubles as the tie-breaking priority: when several
    events carry the same timestamp, finishes are processed before segment
    boundaries, boundaries before arrivals and arrivals before timers.
    """

    FINISH = 0
    SEGMENT_END = 1
    ARRIVAL = 2
    TIMER = 3


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event.

    Parameters
    ----------
    time:
        Simulated time at which the event fires.
    kind:
        The :class:`EventKind`; determines same-time processing order.
    payload:
        Arbitrary data attached by the producer (e.g. the
        :class:`~repro.runtime.trace.RequestEvent` of an arrival).
    epoch:
        Schedule generation counter for lazily invalidated events.  Consumers
        compare it against their current epoch and drop stale events.
    callback:
        Optional callable invoked by :meth:`EventQueue.dispatch` (used for
        timer events).
    """

    time: float
    kind: EventKind
    payload: Any = None
    epoch: int = 0
    callback: Callable[["Event"], None] | None = None


class EventQueue:
    """A priority queue of :class:`Event` objects.

    Examples
    --------
    >>> queue = EventQueue()
    >>> queue.push(Event(2.0, EventKind.ARRIVAL, payload="late"))
    >>> queue.push(Event(1.0, EventKind.ARRIVAL, payload="early"))
    >>> queue.pop().payload
    'early'
    >>> queue.next_time
    2.0
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = 0

    def push(self, event: Event) -> None:
        """Add an event; ``O(log n)``."""
        heapq.heappush(self._heap, (event.time, int(event.kind), self._counter, event))
        self._counter += 1

    def push_timer(
        self, time: float, callback: Callable[[Event], None], payload: Any = None
    ) -> None:
        """Schedule a :attr:`EventKind.TIMER` event that runs ``callback``."""
        self.push(Event(time, EventKind.TIMER, payload=payload, callback=callback))

    def pop(self) -> Event:
        """Remove and return the earliest event; ``O(log n)``."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> Event:
        """Return the earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek into an empty event queue")
        return self._heap[0][-1]

    def dispatch(self, event: Event) -> None:
        """Invoke the event's callback, if any (timer events)."""
        if event.callback is not None:
            event.callback(event)

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop events until the queue is empty (helper for tests/tools)."""
        while self._heap:
            yield self.pop()
