"""Scheduler-activation caching.

Large batch sweeps activate the schedulers on *structurally identical*
problems over and over: the same platform capacity, the same configuration
tables and the same multiset of job residuals and relative deadlines — only
the absolute wall-clock time and the request names differ.  Re-solving the
MMKP for every one of those activations is pure waste.

The :class:`ActivationCache` is an LRU map from a canonical
:class:`~repro.core.problem.SchedulingProblem` signature to the canonical
scheduling result.  :class:`CachingScheduler` wraps any
:class:`~repro.schedulers.base.Scheduler` with it:

1. every incoming problem is *canonicalised* — time is re-anchored at 0,
   jobs are sorted and renamed to stable slots ``j0..jn`` — and the signature
   (capacity, table fingerprints, sorted job residuals/relative deadlines) is
   looked up;
2. on a miss the wrapped scheduler solves the canonical problem and the
   canonical result is stored;
3. hit or miss, the canonical result is re-hydrated against the *original*
   problem (times shifted back, canonical slots re-bound to the real jobs).

Because the canonical transformation is applied on **both** paths, the
returned schedule is a pure function of the problem — independent of cache
state, hit order, worker count or sharing — which is what makes
``SimulationService`` batches bit-reproducible regardless of parallelism.
The flip side: the wrapped heuristic sees jobs in canonical order, so it may
break ties differently than on the raw problem.  A cached run can therefore
differ from an *uncached* run in tie-break decisions (never in validity —
returned schedules satisfy the same constraints (2b)–(2e), which the test
suite checks), while remaining bit-identical from run to run.

The cache is thread-safe; one instance may be shared by all worker threads of
a batch so activations repeated *across* traces hit as well.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.core.config import ConfigTable
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.core.segment import JobMapping, MappingSegment, Schedule
from repro.obs import tracer as obs
from repro.schedulers.base import Scheduler, SchedulingResult


def table_fingerprint(table: ConfigTable) -> tuple:
    """A content-based identity of a configuration table.

    Two tables with the same operating points (in the same order) produce the
    same fingerprint, regardless of object identity — deserialised tables hit
    cache entries populated from freshly built ones.
    """
    return tuple(
        (tuple(point.resources), point.execution_time, point.energy)
        for point in table
    )


def _canonical_order(problem: SchedulingProblem) -> list[Job]:
    """The problem's *real* jobs sorted into canonical slot order.

    This is the one place the canonical sort key lives; the signature, the
    slot naming and the hit-path rebinding all derive from this ordering.
    """
    now = problem.now
    return sorted(
        problem.jobs,
        key=lambda job: (
            job.application,
            job.remaining_ratio,
            job.deadline - now,
            job.name,
        ),
    )


def _slot_jobs(ordered: list[Job], now: float) -> list[Job]:
    """Canonical slot jobs ``j0..jn`` for an already-ordered job list."""
    return [
        Job(
            name=f"j{index}",
            application=job.application,
            arrival=0.0,
            deadline=job.deadline - now,
            remaining_ratio=job.remaining_ratio,
        )
        for index, job in enumerate(ordered)
    ]


def canonical_jobs(problem: SchedulingProblem) -> list[Job]:
    """The problem's jobs in canonical order, re-anchored at time 0.

    Jobs are sorted by (application, remaining ratio, relative deadline,
    name) and renamed to stable slots ``j0..jn``; arrival times collapse to 0
    because only the remaining ratio matters to the schedulers.
    """
    return _slot_jobs(_canonical_order(problem), problem.now)


def problem_signature(
    problem: SchedulingProblem,
    namespace: str = "",
    ordered: list[Job] | None = None,
) -> tuple[Hashable, ...]:
    """The canonical cache key of one scheduler activation.

    The key is built from the platform capacity, the sorted job residuals and
    *relative* deadlines and the content fingerprints of the tables the jobs
    actually use, plus a ``namespace`` (normally the scheduler name) so
    different algorithms never share entries.  Absolute times and request
    names are deliberately absent: activations that only differ by a time
    shift or by naming collide — which is exactly the point.

    ``ordered`` (the :func:`_canonical_order` of the problem) may be passed
    to avoid re-sorting on the activation hot path.
    """
    if ordered is None:
        ordered = _canonical_order(problem)
    now = problem.now
    tables = problem.tables
    jobs_key = tuple(
        (job.application, job.remaining_ratio, job.deadline - now)
        for job in ordered
    )
    table_keys = tuple(
        table_fingerprint(tables[application])
        for application in sorted({job.application for job in ordered})
    )
    return (namespace, tuple(problem.capacity), jobs_key, table_keys)


class ActivationCache:
    """A thread-safe LRU cache of canonical scheduling results.

    Parameters
    ----------
    maxsize:
        Maximum number of entries; the least recently used entry is evicted
        when the cache is full.  ``maxsize <= 0`` disables storing (every
        lookup misses), which is occasionally handy for A/B benchmarks.
    """

    def __init__(self, maxsize: int = 4096):
        self._maxsize = maxsize
        self._entries: OrderedDict[tuple, SchedulingResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple) -> SchedulingResult | None:
        """Look up a canonical result, refreshing its recency on a hit."""
        # Counting happens outside the lock (see SolveCache.get): the
        # critical section covers only the OrderedDict mutation.
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        obs.count("cache.activation.miss" if entry is None else "cache.activation.hit")
        return entry

    def put(self, key: tuple, result: SchedulingResult) -> None:
        """Store a canonical result, evicting the LRU entry when full."""
        if self._maxsize <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        """Number of successful lookups so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups so far."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def info(self) -> dict[str, float]:
        """A snapshot of the cache statistics."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self._maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self.hit_rate,
            }


class CachingScheduler(Scheduler):
    """Wrap a scheduler with an :class:`ActivationCache`.

    The wrapper is transparent to the runtime manager: it is a
    :class:`~repro.schedulers.base.Scheduler` whose ``name`` equals the
    wrapped scheduler's, so logs, reports and benchmarks group results
    identically with and without caching.

    Examples
    --------
    >>> from repro.schedulers import MMKPMDFScheduler
    >>> from repro.workload.motivational import motivational_problem
    >>> cached = CachingScheduler(MMKPMDFScheduler(), ActivationCache())
    >>> first = cached.schedule(motivational_problem("S1"))
    >>> second = cached.schedule(motivational_problem("S1"))
    >>> cached.cache.hits, cached.cache.misses
    (1, 1)
    >>> round(second.energy, 2)
    12.95
    """

    def __init__(self, scheduler: Scheduler, cache: ActivationCache | None = None):
        self._inner = scheduler
        self.cache = cache if cache is not None else ActivationCache()
        self.name = scheduler.name

    @property
    def inner(self) -> Scheduler:
        """The wrapped scheduler."""
        return self._inner

    def begin_run(self, kernel) -> None:
        """Forward the incremental-kernel run hook to the wrapped scheduler."""
        self._inner.begin_run(kernel)

    def end_run(self, kernel) -> None:
        self._inner.end_run(kernel)

    def _solve(self, problem: SchedulingProblem) -> SchedulingResult:
        ordered = _canonical_order(problem)
        key = problem_signature(problem, namespace=self._inner.name, ordered=ordered)
        canonical = self.cache.get(key)
        hit = canonical is not None
        if canonical is None:
            canonical_problem = SchedulingProblem(
                problem.capacity,
                problem.tables,
                _slot_jobs(ordered, problem.now),
                now=0.0,
            )
            canonical = self._inner.schedule(canonical_problem)
            self.cache.put(key, canonical)
        result = self._rehydrate(canonical, problem, ordered)
        statistics = dict(result.statistics)
        statistics["cache_hit"] = 1.0 if hit else 0.0
        # What the underlying solver originally spent on this activation.
        # The Scheduler.schedule() wrapper re-times _solve, so the reported
        # search_time is this activation's *actual* cost — microseconds on a
        # hit — which is what the runtime manager's overhead accounting
        # should see; the canonical solve cost stays available here.
        statistics["solver_search_time"] = canonical.search_time
        return SchedulingResult(
            schedule=result.schedule,
            assignment=result.assignment,
            energy=result.energy,
            statistics=statistics,
        )

    def _rehydrate(
        self,
        canonical: SchedulingResult,
        problem: SchedulingProblem,
        ordered: list[Job],
    ) -> SchedulingResult:
        """Translate a canonical result back to the original problem.

        Canonical slot names map back to the real jobs in canonical order and
        all times shift by the activation time.  Applied on hits *and*
        misses, so the output never depends on which path produced it.
        """
        if canonical.schedule is None:
            return canonical
        now = problem.now
        slot_jobs = {f"j{index}": job for index, job in enumerate(ordered)}
        segments = []
        for segment in canonical.schedule:
            mappings = [
                JobMapping(job=slot_jobs[mapping.job_name], config_index=mapping.config_index)
                for mapping in segment
            ]
            segments.append(
                MappingSegment(segment.start + now, segment.end + now, mappings)
            )
        assignment = {
            slot_jobs[slot].name: config
            for slot, config in canonical.assignment.items()
        }
        return SchedulingResult(
            schedule=Schedule(segments),
            assignment=assignment,
            energy=canonical.energy,
            statistics=canonical.statistics,
        )

    def __repr__(self) -> str:
        return f"CachingScheduler({self._inner!r}, entries={len(self.cache)})"
