"""Declarative simulation jobs and batch specifications.

A :class:`SimulationJob` describes *one* runtime-manager simulation — which
trace (explicit events or a Poisson generator spec), which platform, which
configuration tables, which scheduler, which time-advance engine — without
holding any live objects, so it can be serialised, sharded across machines
and replayed bit-identically.  A :class:`BatchSpec` is a named list of jobs
plus convenience constructors for the common sweep shapes (arrival rates ×
schedulers × repeated trials).

Platforms and tables are referenced by registry name (``"motivational"``,
``"odroid-xu4"``, ``"paper"``, ...) or embedded inline as their
:mod:`repro.io` dictionaries; schedulers by the same names the CLI uses.
Every job carries its own generator seed, which is what makes
:meth:`~repro.service.pool.SimulationService.run_batch` deterministic
regardless of worker count.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.api.registry import platforms as _platforms
from repro.api.registry import schedulers as _schedulers
from repro.core.config import ConfigTable
from repro.exceptions import SerializationError, WorkloadError
from repro.io import (
    load_json,
    platform_from_dict,
    platform_to_dict,
    request_trace_from_dict,
    request_trace_to_dict,
    save_json,
    tables_from_dict,
    tables_to_dict,
)
from repro.platforms import Platform
from repro.runtime.trace import RequestTrace, poisson_trace
from repro.schedulers import Scheduler
from repro.workload import named_tables

#: The scheduler plugin registry (see :mod:`repro.api.registry`).  Kept under
#: its historical name: the registry is a read-only Mapping, so legacy code
#: iterating or indexing the old hard-coded dict keeps working, and plugins
#: registered through :func:`repro.api.register_scheduler` appear here too.
SCHEDULERS = _schedulers

#: The platform plugin registry (see :data:`SCHEDULERS` for the aliasing).
PLATFORMS = _platforms

#: Sentinel distinguishing "argument not passed" from an explicit ``None``.
_UNSET = object()


def build_scheduler(name: str) -> Scheduler:
    """Deprecated: use ``repro.api.schedulers.build(name)``.

    Kept as a shim for pre-registry call sites; behaviour (fresh instance
    per call, :class:`WorkloadError` listing the known names on a miss) is
    unchanged.
    """
    warnings.warn(
        "repro.service.jobs.build_scheduler is deprecated; use "
        "repro.api.schedulers.build(name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _schedulers.build(name)


def build_platform(name: str) -> Platform:
    """Deprecated: use ``repro.api.platforms.build(name)``."""
    warnings.warn(
        "repro.service.jobs.build_platform is deprecated; use "
        "repro.api.platforms.build(name)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _platforms.build(name)


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a generated Poisson request trace.

    The spec is the *recipe*, not the trace: materialising the same spec
    against the same tables always yields the same events, which keeps batch
    runs reproducible and batch files small.
    """

    arrival_rate: float
    num_requests: int
    deadline_factor_range: tuple[float, float] = (1.5, 4.0)
    seed: int = 0

    def __post_init__(self) -> None:
        # Callers may pass a list (JSON, sweeps); canonicalise so the spec —
        # and every SimulationJob hash built on it — stays hashable.
        object.__setattr__(
            self, "deadline_factor_range", tuple(self.deadline_factor_range)
        )

    def materialise(self, tables: Mapping[str, ConfigTable]) -> RequestTrace:
        """Generate the trace against the given configuration tables."""
        return poisson_trace(
            tables,
            arrival_rate=self.arrival_rate,
            num_requests=self.num_requests,
            deadline_factor_range=self.deadline_factor_range,
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        """Serialise the spec."""
        return {
            "arrival_rate": self.arrival_rate,
            "num_requests": self.num_requests,
            "deadline_factor_range": list(self.deadline_factor_range),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        """Reconstruct a spec from :meth:`to_dict` output."""
        try:
            low, high = data.get("deadline_factor_range", (1.5, 4.0))
            return cls(
                arrival_rate=float(data["arrival_rate"]),
                num_requests=int(data["num_requests"]),
                deadline_factor_range=(float(low), float(high)),
                seed=int(data.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"invalid trace spec: {error}") from None


@dataclass(frozen=True)
class SimulationJob:
    """A declarative description of one runtime-manager simulation.

    Exactly one of ``trace`` (explicit events) and ``trace_spec`` (generator
    recipe) must be given.  ``platform`` and ``tables`` accept either a
    registry name or a live object (which serialises inline).  The optional
    energy fields select a frequency governor by name (see
    :data:`~repro.energy.governor.GOVERNORS`) and/or an admission-control
    envelope; all three default to the seed's pinned-frequency,
    unconstrained behaviour and are omitted from the serialised form when
    unset.

    Examples
    --------
    >>> job = SimulationJob("demo", trace_spec=TraceSpec(0.2, 5, seed=7))
    >>> job.scheduler
    'mmkp-mdf'
    >>> SimulationJob.from_dict(job.to_dict()) == job
    True
    """

    name: str
    scheduler: str = "mmkp-mdf"
    platform: str | Platform = "motivational"
    tables: str | Mapping[str, ConfigTable] = "motivational"
    remap_on_finish: bool = False
    engine: str = "events"
    trace: RequestTrace | None = None
    trace_spec: TraceSpec | None = None
    governor: str | None = None
    power_cap_watts: float | None = None
    energy_budget_joules: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("simulation job name must not be empty")
        if (self.trace is None) == (self.trace_spec is None):
            raise WorkloadError(
                f"job {self.name!r}: exactly one of trace and trace_spec is required"
            )
        if self.governor is not None:
            from repro.api.registry import governors

            if self.governor not in governors:
                raise WorkloadError(
                    f"job {self.name!r}: unknown governor {self.governor!r}; "
                    f"choose from {sorted(governors)}"
                )

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def resolve_platform(self) -> Platform:
        """The live platform object."""
        if isinstance(self.platform, Platform):
            return self.platform
        return _platforms.build(self.platform)

    def resolve_tables(self) -> dict[str, ConfigTable]:
        """The live application → configuration-table mapping."""
        if isinstance(self.tables, str):
            return named_tables(self.tables)
        return dict(self.tables)

    def resolve_trace(self, tables: Mapping[str, ConfigTable]) -> RequestTrace:
        """The live request trace (generated from the spec if needed)."""
        if self.trace is not None:
            return self.trace
        return self.trace_spec.materialise(tables)

    def with_seed(self, seed: int) -> "SimulationJob":
        """Copy of the job with the generator seed replaced (spec jobs only)."""
        if self.trace_spec is None:
            raise WorkloadError(
                f"job {self.name!r} carries an explicit trace; cannot reseed"
            )
        return replace(self, trace_spec=replace(self.trace_spec, seed=seed))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise the job to a plain-JSON dictionary."""
        data: dict[str, Any] = {
            "name": self.name,
            "scheduler": self.scheduler,
            "platform": (
                self.platform
                if isinstance(self.platform, str)
                else platform_to_dict(self.platform)
            ),
            "tables": (
                self.tables
                if isinstance(self.tables, str)
                else tables_to_dict(self.tables)
            ),
            "remap_on_finish": self.remap_on_finish,
            "engine": self.engine,
        }
        if self.trace is not None:
            data["trace"] = request_trace_to_dict(self.trace)
        if self.trace_spec is not None:
            data["trace_spec"] = self.trace_spec.to_dict()
        if self.governor is not None:
            data["governor"] = self.governor
        if self.power_cap_watts is not None:
            data["power_cap_watts"] = self.power_cap_watts
        if self.energy_budget_joules is not None:
            data["energy_budget_joules"] = self.energy_budget_joules
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationJob":
        """Reconstruct a job from :meth:`to_dict` output."""
        if "name" not in data:
            raise SerializationError("simulation job: missing required field 'name'")
        platform = data.get("platform", "motivational")
        if not isinstance(platform, str):
            platform = platform_from_dict(platform)
        tables = data.get("tables", "motivational")
        if not isinstance(tables, str):
            tables = tables_from_dict(tables)
        trace = data.get("trace")
        trace_spec = data.get("trace_spec")
        return cls(
            name=data["name"],
            scheduler=data.get("scheduler", "mmkp-mdf"),
            platform=platform,
            tables=tables,
            remap_on_finish=bool(data.get("remap_on_finish", False)),
            engine=data.get("engine", "events"),
            trace=request_trace_from_dict(trace) if trace is not None else None,
            trace_spec=TraceSpec.from_dict(trace_spec) if trace_spec is not None else None,
            governor=data.get("governor"),
            power_cap_watts=(
                float(data["power_cap_watts"])
                if data.get("power_cap_watts") is not None
                else None
            ),
            energy_budget_joules=(
                float(data["energy_budget_joules"])
                if data.get("energy_budget_joules") is not None
                else None
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationJob):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        # Equality is full-spec (the serialised dict above), so the hash must
        # cover every hashable identity field too — in particular the energy
        # policy: two sweep jobs that differ only in governor or power/energy
        # envelope must not collapse onto one set/dict slot.  Platform/tables
        # may be inline mappings (unhashable) and are left to __eq__.
        return hash(
            (
                self.name,
                self.scheduler,
                self.remap_on_finish,
                self.engine,
                self.trace_spec,
                self.governor,
                self.power_cap_watts,
                self.energy_budget_joules,
            )
        )


@dataclass(frozen=True)
class BatchSpec:
    """A named, serialisable batch of simulation jobs.

    Examples
    --------
    >>> spec = BatchSpec.sweep(arrival_rates=[0.1], schedulers=["mmkp-mdf"],
    ...                        traces_per_point=2, num_requests=3)
    >>> len(spec)
    2
    >>> BatchSpec.from_dict(spec.to_dict()).jobs == spec.jobs
    True
    """

    name: str
    jobs: tuple[SimulationJob, ...]
    description: str = ""

    def __post_init__(self) -> None:
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate job names in batch {self.name!r}")

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def sweep(
        cls,
        arrival_rates: Sequence[float],
        schedulers: Sequence[str] = ("mmkp-mdf",),
        traces_per_point: int = 10,
        num_requests: int = 10,
        deadline_factor_range: tuple[float, float] = (1.5, 4.0),
        repeats: int = 1,
        base_seed: int = 0,
        platform: str | Platform = "motivational",
        tables: str | Mapping[str, ConfigTable] = "motivational",
        engine: str = "events",
        name: str = "sweep",
    ) -> "BatchSpec":
        """A full factorial sweep: arrival rates × schedulers × trials.

        The same ``traces_per_point`` trace seeds are reused across all
        schedulers (paired comparison) and across all ``repeats`` (the
        repeated-sweep shape that exercises the activation cache).
        """
        if traces_per_point <= 0 or repeats <= 0:
            raise WorkloadError("traces_per_point and repeats must be positive")
        jobs = []
        for scheduler in schedulers:
            for rate_index, rate in enumerate(arrival_rates):
                for trial in range(traces_per_point):
                    seed = base_seed + rate_index * traces_per_point + trial
                    spec = TraceSpec(
                        arrival_rate=rate,
                        num_requests=num_requests,
                        deadline_factor_range=deadline_factor_range,
                        seed=seed,
                    )
                    for repeat in range(repeats):
                        suffix = f"-rep{repeat}" if repeats > 1 else ""
                        jobs.append(
                            SimulationJob(
                                name=f"{scheduler}-rate{rate:g}-t{trial:03d}{suffix}",
                                scheduler=scheduler,
                                platform=platform,
                                tables=tables,
                                engine=engine,
                                trace_spec=spec,
                            )
                        )
        return cls(name=name, jobs=tuple(jobs))

    def shard(self, index: int, count: int) -> "BatchSpec":
        """The ``index``-th of ``count`` round-robin shards of the batch."""
        if count <= 0 or not 0 <= index < count:
            raise WorkloadError(f"invalid shard {index}/{count}")
        return replace(
            self,
            name=f"{self.name}-shard{index}of{count}",
            jobs=self.jobs[index::count],
        )

    def with_energy_policy(
        self,
        governor: str | None = _UNSET,
        power_cap_watts: float | None = _UNSET,
        energy_budget_joules: float | None = _UNSET,
    ) -> "BatchSpec":
        """Copy of the batch with the energy policy applied to every job.

        Only the fields actually passed are overridden — per-job policies in
        the spec survive unless explicitly replaced (pass ``None`` to clear
        one).  Used by ``repro-rm energy`` to replay an existing batch under
        a different governor or power/energy envelope.
        """

        def pick(value, current):
            return current if value is _UNSET else value

        return replace(
            self,
            jobs=tuple(
                replace(
                    job,
                    governor=pick(governor, job.governor),
                    power_cap_watts=pick(power_cap_watts, job.power_cap_watts),
                    energy_budget_joules=pick(
                        energy_budget_joules, job.energy_budget_joules
                    ),
                )
                for job in self.jobs
            ),
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise the batch to a plain-JSON dictionary."""
        return {
            "name": self.name,
            "description": self.description,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchSpec":
        """Reconstruct a batch from :meth:`to_dict` output."""
        if "jobs" not in data:
            raise SerializationError("batch spec: missing required field 'jobs'")
        return cls(
            name=data.get("name", "batch"),
            description=data.get("description", ""),
            jobs=tuple(SimulationJob.from_dict(entry) for entry in data["jobs"]),
        )

    def save(self, path: str | Path) -> None:
        """Write the batch spec as JSON."""
        save_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str | Path) -> "BatchSpec":
        """Load a batch spec written by :meth:`save`."""
        return cls.from_dict(load_json(path))
