"""Per-tenant session state: named, resumable sessions and warm caches.

The gateway's performance story is the same as the in-process one — the
:class:`~repro.kernel.caches.KernelCaches` content-keyed warm starts — made
durable across HTTP requests.  Each tenant owns exactly one
:class:`KernelCaches` store; every :class:`~repro.api.session.Session` the
gateway materialises for that tenant adopts it, so the second submission of
a similar spec resumes from warm table slices and solver memos no matter
which named session (or none) it lands on.

Named sessions add spec-level reuse on top: submitting with
``{"session": "warm-1"}`` keeps the materialised ``Session`` object —
platform and resolved tables included — alive under that name, so repeat
submissions of the *same* spec skip table resolution entirely.  A named
session whose spec changes is transparently rebuilt (the caches persist;
they are keyed by content, not by name).

Tenants are isolated from each other by construction: nothing in one
tenant's store is reachable from another's.  A gateway configured with a
persistent :class:`~repro.store.ContentStore` shares *entries* across
tenants anyway — safely, because the content store is keyed purely by
problem content (fingerprints, capacities, exact ratios), never by tenant:
each tenant still gets its own :class:`KernelCaches` front, but all fronts
write through to (and warm from) the one shared store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any


@dataclass
class TenantState:
    """Everything the gateway keeps for one tenant."""

    name: str
    kernel_caches: Any = None  # KernelCaches, built lazily
    #: Named sessions: name → (spec, Session), LRU-bounded.
    sessions: OrderedDict = field(default_factory=OrderedDict)
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionStore:
    """Thread-safe registry of :class:`TenantState` keyed by tenant name.

    ``session_for`` is called from executor threads (one per in-flight
    run), so every mutation happens under the tenant's lock; the returned
    ``Session`` objects are themselves safe for the gateway's use because
    each ``run`` builds a fresh manager and the shared ``KernelCaches`` is
    thread-safe by design.
    """

    #: Named sessions kept per tenant before the least recently used drops.
    MAX_NAMED_SESSIONS = 32

    def __init__(self, content_store=None) -> None:
        self._tenants: dict[str, TenantState] = {}
        self._lock = threading.Lock()
        #: Optional shared repro.store.ContentStore backing every tenant's
        #: caches (None keeps each tenant purely process-local, as before).
        self.content_store = content_store

    def tenant(self, name: str) -> TenantState:
        """The (created-on-first-use) state of one tenant."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = self._tenants[name] = TenantState(name=name)
            return state

    def tenants(self) -> list[str]:
        """Names of every tenant seen so far (sorted, for /metrics)."""
        with self._lock:
            return sorted(self._tenants)

    def caches_for(self, tenant: str):
        """The tenant's shared :class:`KernelCaches` (built on first use)."""
        state = self.tenant(tenant)
        with state.lock:
            if state.kernel_caches is None:
                from repro.store.bindings import store_backed_caches

                state.kernel_caches = store_backed_caches(self.content_store)
            return state.kernel_caches

    def session_for(self, tenant: str, session_name: str | None, spec):
        """A :class:`~repro.api.session.Session` for one submission.

        Anonymous submissions get a fresh session wired to the tenant's
        warm caches.  Named submissions reuse the stored session when its
        spec matches (specs are frozen dataclasses, so equality is
        structural); otherwise the name is rebound to a new session.
        """
        from repro.api.session import Session

        caches = self.caches_for(tenant)
        if session_name is None:
            return Session.from_spec(spec, kernel_caches=caches)
        state = self.tenant(tenant)
        with state.lock:
            entry = state.sessions.get(session_name)
            if entry is not None and entry[0] == spec:
                state.sessions.move_to_end(session_name)
                return entry[1]
            session = Session.from_spec(spec, kernel_caches=caches)
            state.sessions[session_name] = (spec, session)
            state.sessions.move_to_end(session_name)
            while len(state.sessions) > self.MAX_NAMED_SESSIONS:
                state.sessions.popitem(last=False)
            return session

    def named_sessions(self, tenant: str) -> list[str]:
        """The live named sessions of one tenant (oldest first)."""
        state = self.tenant(tenant)
        with state.lock:
            return list(state.sessions)


__all__ = ["SessionStore", "TenantState"]
