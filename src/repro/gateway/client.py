"""A thin blocking client for the gateway daemon (stdlib ``http.client``).

The client is deliberately dependency-free and synchronous: tests, the
``repro-rm submit`` CLI, benchmarks and examples all drive the daemon
through it, so it doubles as the reference consumer of the wire schema in
:mod:`repro.gateway.protocol`.

Requests go out with ``Connection: keep-alive`` and reuse one cached socket
across submit/poll calls; a stale socket (daemon restart, idle timeout) is
transparently replaced with one reconnect attempt.  SSE streams always run
on their own connection because the daemon closes the socket when the run
ends.  Call :meth:`GatewayClient.close` (or use the client as a context
manager) to release the cached connection.

::

    client = GatewayClient("http://127.0.0.1:8023", tenant="acme")
    record = client.submit_run(spec)
    for event in client.events(record["id"]):       # live SSE stream
        print(event["kind"], event["time"])
    result = client.wait_run(record["id"])["result"]
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import ReproError
from repro.gateway.protocol import PROTOCOL_VERSION, iter_sse


class GatewayError(ReproError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, body: Mapping[str, Any] | str):
        self.status = status
        self.body = body
        detail = body
        if isinstance(body, Mapping) and "error" in body:
            error = body["error"]
            detail = f"{error.get('type', 'error')}: {error.get('message', '')}"
        super().__init__(f"gateway returned {status}: {detail}")


class GatewayClient:
    """Blocking HTTP client bound to one daemon and one default tenant."""

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str | None = None,
        timeout: float = 300.0,
    ):
        split = urllib.parse.urlsplit(base_url)
        if split.scheme not in ("http", ""):
            raise ReproError(f"gateway client speaks plain http, got {base_url!r}")
        netloc = split.netloc or split.path  # accept "host:port" without scheme
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.tenant = tenant
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _fresh_connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _cached_connection(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = self._fresh_connection()
        return self._connection

    def _discard_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    def close(self) -> None:
        """Release the cached keep-alive connection (idempotent)."""
        self._discard_connection()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> Any:
        payload = None
        headers = {"Accept": "application/json", "Connection": "keep-alive"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._cached_connection()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read().decode("utf-8")
            except (http.client.HTTPException, ConnectionError, OSError):
                # The cached socket went stale between requests (daemon
                # restart, idle timeout): replace it and retry once.
                self._discard_connection()
                if attempt:
                    raise
                continue
            if response.will_close:
                self._discard_connection()
            try:
                data = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                data = raw
            if response.status >= 400:
                raise GatewayError(response.status, data)
            return data

    # ------------------------------------------------------------------ #
    # Daemon state
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        """Daemon liveness, drain state and queue depths."""
        health = self._request("GET", "/healthz")
        advertised = str(health.get("protocol", PROTOCOL_VERSION))
        if advertised.split(".", 1)[0] != PROTOCOL_VERSION.split(".", 1)[0]:
            raise ReproError(
                f"daemon speaks protocol {advertised}, client {PROTOCOL_VERSION}"
            )
        return health

    def metrics_text(self) -> str:
        """The raw Prometheus exposition of ``GET /metrics``."""
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def _submission(self, spec, session, timeout_s, extra=None) -> dict:
        body: dict = {"spec": spec.to_dict() if hasattr(spec, "to_dict") else spec}
        if self.tenant is not None:
            body["tenant"] = self.tenant
        if session is not None:
            body["session"] = session
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if extra:
            body.update(extra)
        return body

    def submit_run(
        self,
        spec,
        *,
        session: str | None = None,
        engine: str | None = None,
        timeout_s: float | None = None,
    ) -> dict:
        """``POST /runs``: returns the queued run record (with its ``id``)."""
        extra = {"engine": engine} if engine is not None else None
        return self._request(
            "POST", "/runs", self._submission(spec, session, timeout_s, extra)
        )

    def run_status(self, run_id: str) -> dict:
        return self._request("GET", f"/runs/{run_id}")

    def wait_run(self, run_id: str) -> dict:
        """Long-poll ``GET /runs/{id}/wait`` until the run is terminal."""
        return self._request("GET", f"/runs/{run_id}/wait")

    def trace(self, run_id: str) -> dict:
        """The run's span trace: ``{id, trace_id, state, spans}``.

        ``spans`` is empty until the run finishes (the daemon publishes the
        completed span tree atomically with the result).
        """
        return self._request("GET", f"/runs/{run_id}/trace")

    def events(self, run_id: str, *, start: int = 0) -> Iterator[dict]:
        """Stream the run's events over SSE (replay from ``start``, then live).

        Yields each event's wire dictionary (see
        :meth:`repro.api.events.RunEvent.to_dict`); a failed run yields a
        final ``{"kind": "error", ...}`` frame.  Use
        :meth:`repro.api.events.RunEvent.from_dict` to rebuild typed events.
        """
        connection = self._fresh_connection()
        try:
            connection.request(
                "GET",
                f"/runs/{run_id}/events?from={start}",
                headers={"Accept": "text/event-stream"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8")
                try:
                    data = json.loads(raw) if raw else None
                except json.JSONDecodeError:
                    data = raw
                raise GatewayError(response.status, data)
            yield from iter_sse(response)
        finally:
            connection.close()

    def run(
        self,
        spec,
        *,
        session: str | None = None,
        engine: str | None = None,
        timeout_s: float | None = None,
    ) -> dict:
        """Submit a run and block until it finished; return its final status.

        Raises :class:`GatewayError` if the run failed (status carries the
        error envelope).
        """
        record = self.submit_run(
            spec, session=session, engine=engine, timeout_s=timeout_s
        )
        status = self.wait_run(record["id"])
        if status["state"] != "done":
            raise GatewayError(500, {"error": status.get("error", {})})
        return status

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #
    def submit_batch(
        self,
        spec,
        *,
        trials: int = 1,
        seeds: Sequence[int] | None = None,
        session: str | None = None,
        timeout_s: float | None = None,
    ) -> dict:
        extra: dict = {"trials": trials}
        if seeds is not None:
            extra["seeds"] = list(seeds)
        return self._request(
            "POST", "/batches", self._submission(spec, session, timeout_s, extra)
        )

    def batch_status(self, batch_id: str) -> dict:
        return self._request("GET", f"/batches/{batch_id}")

    def wait_batch(self, batch_id: str) -> dict:
        return self._request("GET", f"/batches/{batch_id}/wait")


__all__ = ["GatewayClient", "GatewayError"]
