"""Fair admission of gateway work: per-tenant limits and FIFO queueing.

The daemon must keep serving *many* tenants when one of them floods it.
The :class:`AdmissionController` enforces two concurrency bounds — a global
executor bound and a per-tenant bound — and queues the excess **fairly**:
waiters form one FIFO per tenant and slots are granted round-robin across
tenants, so a tenant submitting 100 runs cannot starve a tenant submitting
one (within a tenant, order of arrival is preserved).

Everything runs on the event loop (no locks needed); the controller hands
out slots as awaited futures, optionally bounded by a queue timeout.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque

from repro.exceptions import ReproError


class AdmissionTimeout(ReproError):
    """A queued request waited longer than its admission timeout."""


class AdmissionController:
    """Grant run slots fairly across tenants, FIFO within a tenant.

    Parameters
    ----------
    max_concurrent:
        Global bound on simultaneously running simulations.
    max_per_tenant:
        Bound on one tenant's simultaneously running simulations.
    queue_timeout_s:
        Default bound on time spent *waiting* for a slot (``None``: wait
        forever); per-acquire timeouts override it.
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 8,
        max_per_tenant: int = 2,
        queue_timeout_s: float | None = None,
    ):
        if max_concurrent < 1 or max_per_tenant < 1:
            raise ValueError("admission limits must be at least 1")
        self.max_concurrent = max_concurrent
        self.max_per_tenant = max_per_tenant
        self.queue_timeout_s = queue_timeout_s
        self._queues: dict[str, deque] = {}
        self._order: deque[str] = deque()  # round-robin cursor over tenants
        self._running: dict[str, int] = {}
        self._total_running = 0
        # Observability (served by GET /metrics and asserted by tests).
        self.admitted = 0
        self.timeouts = 0
        self.peak_total = 0
        self.peak_per_tenant: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def running_total(self) -> int:
        """Simulations currently holding a slot."""
        return self._total_running

    @property
    def queued_total(self) -> int:
        """Waiters currently queued across all tenants."""
        return sum(
            sum(1 for future in queue if not future.done())
            for queue in self._queues.values()
        )

    def running_of(self, tenant: str) -> int:
        """Slots the named tenant currently holds."""
        return self._running.get(tenant, 0)

    # ------------------------------------------------------------------ #
    # Slot lifecycle
    # ------------------------------------------------------------------ #
    async def acquire(self, tenant: str, timeout_s: float | None = None) -> None:
        """Wait (fairly) for a run slot of ``tenant``.

        Raises :class:`AdmissionTimeout` when the wait exceeds the timeout;
        the waiter is removed from the queue, never granted.
        """
        future = asyncio.get_running_loop().create_future()
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._order.append(tenant)
        queue.append(future)
        self._dispatch()
        if timeout_s is None:
            timeout_s = self.queue_timeout_s
        try:
            await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; _dispatch skips done waiters.
            self.timeouts += 1
            raise AdmissionTimeout(
                f"tenant {tenant!r}: no run slot within {timeout_s:g}s "
                f"({self._total_running} running, {self.queued_total} queued)"
            ) from None

    def release(self, tenant: str) -> None:
        """Return a slot and wake the next fair waiter."""
        count = self._running.get(tenant, 0)
        if count <= 0:
            raise RuntimeError(f"release without acquire for tenant {tenant!r}")
        if count == 1:
            del self._running[tenant]
        else:
            self._running[tenant] = count - 1
        self._total_running -= 1
        self._dispatch()

    @contextlib.asynccontextmanager
    async def slot(self, tenant: str, timeout_s: float | None = None):
        """``async with controller.slot(tenant): ...`` acquire/release."""
        await self.acquire(tenant, timeout_s)
        try:
            yield
        finally:
            self.release(tenant)

    # ------------------------------------------------------------------ #
    # Fair dispatch
    # ------------------------------------------------------------------ #
    def _grant(self, tenant: str, future) -> None:
        count = self._running.get(tenant, 0) + 1
        self._running[tenant] = count
        self._total_running += 1
        self.admitted += 1
        self.peak_total = max(self.peak_total, self._total_running)
        self.peak_per_tenant[tenant] = max(
            self.peak_per_tenant.get(tenant, 0), count
        )
        future.set_result(None)

    def _dispatch(self) -> None:
        """Grant as many slots as the limits allow, round-robin by tenant."""
        progressed = True
        while progressed and self._total_running < self.max_concurrent:
            progressed = False
            for _ in range(len(self._order)):
                tenant = self._order[0]
                self._order.rotate(-1)
                queue = self._queues.get(tenant)
                if queue:
                    # Timed-out waiters were cancelled in place; skip them.
                    while queue and queue[0].done():
                        queue.popleft()
                if not queue:
                    continue
                if self._running.get(tenant, 0) >= self.max_per_tenant:
                    continue
                self._grant(tenant, queue.popleft())
                progressed = True
                if self._total_running >= self.max_concurrent:
                    return


__all__ = ["AdmissionController", "AdmissionTimeout"]
