"""Wire schemas of the gateway: JSON payloads and Server-Sent Events.

Everything the daemon and the client exchange is defined here, in one
place, so the two sides — and the tests that pin the schema — can never
drift apart:

* run/batch **submissions** (:func:`parse_run_submission`,
  :func:`parse_batch_submission`): the request bodies of ``POST /runs`` and
  ``POST /batches``, validated into plain dataclasses with the embedded
  :class:`~repro.api.spec.ExperimentSpec` already type-checked;
* **event frames**: :class:`~repro.api.events.RunEvent` travels as its
  :meth:`~repro.api.events.RunEvent.to_dict` form inside an SSE frame
  (:func:`sse_frame`) whose ``event:`` field is the
  :class:`~repro.api.events.RunEventKind` value — :func:`iter_sse` is the
  inverse used by the blocking client;
* **error envelopes** (:func:`error_body`): every non-2xx response is
  ``{"error": {"type": ..., "message": ...}}``.

The schema is versioned (:data:`PROTOCOL_VERSION`); the daemon advertises
it from ``GET /healthz`` and clients may refuse to talk to a newer major.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, IO, Iterator, Mapping

from repro.exceptions import ReproError, WorkloadError

#: Bumped on any backwards-incompatible change to the wire schema.
PROTOCOL_VERSION = "1"

#: Tenant names are path/label-safe identifiers.
_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.")

#: The fallback tenant of unlabelled submissions.
DEFAULT_TENANT = "default"


class ProtocolError(ReproError):
    """A malformed request or response body."""


def _clean_name(value: Any, label: str, default: str | None = None) -> str | None:
    if value is None:
        return default
    if not isinstance(value, str) or not value or not set(value) <= _NAME_CHARS:
        raise ProtocolError(
            f"{label} must be a non-empty [A-Za-z0-9._-] string, got {value!r}"
        )
    if len(value) > 128:
        raise ProtocolError(f"{label} is too long ({len(value)} > 128 chars)")
    return value


def _spec_from(body: Mapping[str, Any], label: str):
    from repro.api.spec import ExperimentSpec

    spec_data = body.get("spec")
    if not isinstance(spec_data, Mapping):
        raise ProtocolError(f"{label} needs a 'spec' object (an ExperimentSpec)")
    try:
        return ExperimentSpec.from_dict(spec_data)
    except ReproError as error:
        raise ProtocolError(f"invalid experiment spec: {error}") from error


@dataclass(frozen=True)
class RunSubmission:
    """One validated ``POST /runs`` body."""

    spec: Any  # ExperimentSpec (kept untyped: the spec tree imports lazily)
    tenant: str = DEFAULT_TENANT
    session: str | None = None  # named gateway session for warm reuse
    engine: str | None = None
    timeout_s: float | None = None  # queue-to-finish deadline


@dataclass(frozen=True)
class BatchSubmission:
    """One validated ``POST /batches`` body."""

    spec: Any
    tenant: str = DEFAULT_TENANT
    session: str | None = None
    trials: int = 1
    seeds: tuple[int, ...] | None = None
    timeout_s: float | None = None


def parse_run_submission(body: Mapping[str, Any]) -> RunSubmission:
    """Validate a ``POST /runs`` body into a :class:`RunSubmission`."""
    if not isinstance(body, Mapping):
        raise ProtocolError(f"run submission must be a JSON object, got {body!r}")
    engine = body.get("engine")
    if engine is not None and not isinstance(engine, str):
        raise ProtocolError(f"engine must be a string, got {engine!r}")
    return RunSubmission(
        spec=_spec_from(body, "run submission"),
        tenant=_clean_name(body.get("tenant"), "tenant", DEFAULT_TENANT),
        session=_clean_name(body.get("session"), "session"),
        engine=engine,
        timeout_s=_positive(body.get("timeout_s"), "timeout_s"),
    )


def parse_batch_submission(body: Mapping[str, Any]) -> BatchSubmission:
    """Validate a ``POST /batches`` body into a :class:`BatchSubmission`."""
    if not isinstance(body, Mapping):
        raise ProtocolError(f"batch submission must be a JSON object, got {body!r}")
    trials = body.get("trials", 1)
    if not isinstance(trials, int) or trials < 1:
        raise ProtocolError(f"trials must be a positive integer, got {trials!r}")
    seeds = body.get("seeds")
    if seeds is not None:
        if not isinstance(seeds, list) or not all(
            isinstance(seed, int) for seed in seeds
        ):
            raise ProtocolError(f"seeds must be a list of integers, got {seeds!r}")
        seeds = tuple(seeds)
    return BatchSubmission(
        spec=_spec_from(body, "batch submission"),
        tenant=_clean_name(body.get("tenant"), "tenant", DEFAULT_TENANT),
        session=_clean_name(body.get("session"), "session"),
        trials=trials,
        seeds=seeds,
        timeout_s=_positive(body.get("timeout_s"), "timeout_s"),
    )


def _positive(value: Any, label: str) -> float | None:
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"{label} must be a number, got {value!r}") from None
    if value <= 0:
        raise ProtocolError(f"{label} must be positive, got {value}")
    return value


# ---------------------------------------------------------------------- #
# Equivalence views
# ---------------------------------------------------------------------- #
#: Event payload fields that are wall-clock measurements: identical runs
#: report different values for them, so equivalence checks strip them.
WALL_CLOCK_FIELDS = frozenset({"search_time"})


def canonical_events(events) -> list[dict]:
    """Event payloads with wall-clock fields removed.

    Two runs of the same spec are *equivalent* iff their canonical event
    sequences are equal — this is the contract the gateway tests (and the
    CI smoke job) assert between a remote run and an in-process one.
    """
    canonical = []
    for payload in events:
        data = {
            key: value
            for key, value in (payload.get("data") or {}).items()
            if key not in WALL_CLOCK_FIELDS
        }
        # The daemon stamps its per-request trace id onto streamed frames;
        # like wall-clock fields it is run-specific, never behavioural.
        stripped = {key: value for key, value in payload.items() if key != "trace_id"}
        canonical.append({**stripped, "data": data})
    return canonical


# ---------------------------------------------------------------------- #
# Error envelopes
# ---------------------------------------------------------------------- #
def error_body(kind: str, message: str) -> dict:
    """The uniform JSON error envelope of every non-2xx response."""
    return {"error": {"type": kind, "message": message}}


def error_from(exception: BaseException) -> dict:
    if isinstance(exception, ProtocolError):
        return error_body("protocol", str(exception))
    if isinstance(exception, WorkloadError):
        return error_body("workload", str(exception))
    return error_body(type(exception).__name__, str(exception))


# ---------------------------------------------------------------------- #
# Server-Sent Events
# ---------------------------------------------------------------------- #
def sse_frame(
    event: Mapping[str, Any], index: int, trace_id: str | None = None
) -> bytes:
    """One SSE frame: ``id`` = event index, ``event`` = RunEventKind value.

    The ``id`` line lets a disconnected client resume with
    ``GET /runs/{id}/events?from=<last id + 1>``.  ``trace_id`` (the run's
    server-minted span-trace id) is merged into the payload at frame time so
    the buffered event dictionaries stay byte-identical to an in-process
    run's; :func:`canonical_events` strips it again for equivalence checks.
    """
    if trace_id is not None:
        event = {**event, "trace_id": trace_id}
    payload = json.dumps(event, separators=(",", ":"), sort_keys=True)
    kind = event.get("kind", "message")
    return f"id: {index}\nevent: {kind}\ndata: {payload}\n\n".encode("utf-8")


def iter_sse(stream: IO[bytes]) -> Iterator[dict]:
    """Parse an SSE byte stream back into event payload dictionaries.

    Only ``data:`` lines matter for reconstruction (``event:``/``id:`` are
    redundant with the payload's ``kind`` and position); multi-line data is
    joined per the SSE spec.  The iterator ends when the server closes the
    stream.
    """
    data_lines: list[str] = []
    for raw in stream:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:  # blank line = dispatch the pending frame
            if data_lines:
                yield json.loads("\n".join(data_lines))
                data_lines = []
            continue
        if line.startswith("data:"):
            data_lines.append(line[5:].lstrip(" "))
    if data_lines:  # stream closed mid-frame with pending data
        yield json.loads("\n".join(data_lines))


__all__ = [
    "BatchSubmission",
    "DEFAULT_TENANT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RunSubmission",
    "WALL_CLOCK_FIELDS",
    "canonical_events",
    "error_body",
    "error_from",
    "iter_sse",
    "parse_batch_submission",
    "parse_run_submission",
    "sse_frame",
]
