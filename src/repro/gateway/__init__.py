"""``repro.gateway`` — scheduler-as-a-service over the Session facade.

A long-running, stdlib-only asyncio daemon that exposes the full
:class:`~repro.api.session.Session` surface to remote tenants:

* :mod:`repro.gateway.protocol` — the JSON wire schemas (run/batch
  submission, error envelopes, SSE framing of
  :class:`~repro.api.events.RunEvent`\\ s) shared by server and client;
* :mod:`repro.gateway.server` — the HTTP daemon: ``POST /runs``,
  ``POST /batches``, status/wait endpoints, per-run SSE event streams,
  ``/healthz`` and Prometheus ``/metrics``, with graceful drain on SIGTERM;
* :mod:`repro.gateway.store` — named, resumable sessions and one
  :class:`~repro.kernel.caches.KernelCaches` per tenant, so warm starts
  survive across requests;
* :mod:`repro.gateway.admission` — per-tenant concurrency limits with
  fair, round-robin FIFO queueing across tenants;
* :mod:`repro.gateway.bridge` — the bounded backpressure pipe from the
  synchronous simulation thread into the event loop;
* :mod:`repro.gateway.client` — the blocking reference client used by
  ``repro-rm submit``, the tests and the benchmarks.

Quick start (in one process, for real deployments use ``repro-rm serve``)::

    from repro.gateway import GatewayClient, GatewayConfig, InProcessGateway

    with InProcessGateway(GatewayConfig(port=0)) as gateway:
        client = GatewayClient(gateway.base_url)
        status = client.run(spec)           # submit + wait
        print(status["result"]["fingerprint"])

A spec submitted through the gateway produces the same result fingerprint
and the same ordered event sequence as ``Session.from_spec(spec).run()``
in-process — remote execution is an equivalence, not an approximation.
"""

from __future__ import annotations

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "EventBridge",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayServer",
    "InProcessGateway",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RunRegistry",
    "RunState",
    "RunTimeout",
    "SessionStore",
    "serve",
]

_LAZY = {
    "AdmissionController": "repro.gateway.admission",
    "AdmissionTimeout": "repro.gateway.admission",
    "EventBridge": "repro.gateway.bridge",
    "GatewayClient": "repro.gateway.client",
    "GatewayConfig": "repro.gateway.server",
    "GatewayError": "repro.gateway.client",
    "GatewayServer": "repro.gateway.server",
    "InProcessGateway": "repro.gateway.server",
    "PROTOCOL_VERSION": "repro.gateway.protocol",
    "ProtocolError": "repro.gateway.protocol",
    "RunRegistry": "repro.gateway.runs",
    "RunState": "repro.gateway.runs",
    "RunTimeout": "repro.gateway.server",
    "SessionStore": "repro.gateway.store",
    "serve": "repro.gateway.server",
}

from repro._lazy import lazy_attributes  # noqa: E402

__getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
