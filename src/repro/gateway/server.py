"""The asyncio gateway daemon: the Session facade served over HTTP.

Stdlib-only (``asyncio.start_server`` + a minimal HTTP/1.1 layer — the
repository is offline-installable, so no web framework).  Endpoints:

========================  =====================================================
``POST /runs``            submit an :class:`~repro.api.spec.ExperimentSpec`;
                          202 with the queued run record
``GET /runs/{id}``        run status (result summary + fingerprint when done)
``GET /runs/{id}/wait``   long-poll: respond once the run is terminal
``GET /runs/{id}/events`` Server-Sent Events replay + live stream of the
                          run's :class:`~repro.api.events.RunEvent`\\ s
``POST /batches``         submit seeded trials; 202 with the batch record
``GET /batches/{id}``     batch status (``BatchResults.to_dict`` when done)
``GET /batches/{id}/wait`` long-poll for batch completion
``GET /healthz``          liveness + drain state + queue depths
``GET /metrics``          Prometheus text exposition
========================  =====================================================

Connections default to one request per socket (``Connection: close``), but a
client that sends ``Connection: keep-alive`` gets the connection back for the
next request — the blocking :class:`~repro.gateway.client.GatewayClient` uses
this to run submit/poll loops over a single socket.  SSE responses always
stream until the run ends and then close.  ``SIGTERM``/``SIGINT`` trigger a
graceful drain: new submissions get 503, in-flight and queued work finishes,
then the daemon exits.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import threading
import time
import urllib.parse
import uuid
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.gateway import protocol
from repro.gateway.admission import AdmissionController, AdmissionTimeout
from repro.gateway.bridge import EventBridge
from repro.gateway.protocol import ProtocolError
from repro.gateway.runs import RunRegistry, RunState
from repro.gateway.store import SessionStore
from repro.obs.profile import PHASE_SPANS
from repro.obs.tracer import Tracer
from repro.service.metrics import (
    Counter,
    Histogram,
    ServiceMetrics,
    escape_label_value,
    prometheus_grouped_lines,
    prometheus_lines,
)

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_COUNT = 100
_READ_TIMEOUT_S = 30.0


class RunTimeout(ReproError):
    """An admitted run exceeded its submission's ``timeout_s``."""


@dataclass(frozen=True)
class GatewayConfig:
    """Tunable knobs of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8023  # 0 = ephemeral (the bound port is GatewayServer.port)
    #: Global bound on simultaneously running simulations.
    max_concurrent: int = 8
    #: Bound on one tenant's simultaneously running simulations.
    max_per_tenant: int = 2
    #: Default bound on queue wait (None: wait forever).
    queue_timeout_s: float | None = None
    #: Worker count of each batch submission's SimulationService.
    batch_workers: int = 1
    #: Largest accepted request body.
    max_body_bytes: int = 8 * 1024 * 1024
    #: Trace every run with a :class:`~repro.obs.Tracer`: responses carry a
    #: ``trace_id``, the span tree is served by ``GET /runs/{id}/trace`` and
    #: phase durations feed the ``/metrics`` exposition.
    trace_runs: bool = True
    #: Path of a persistent :class:`~repro.store.ContentStore` shared by
    #: every tenant's caches (``None``: tenants stay process-local; the
    #: ``REPRO_STORE`` environment variable overrides either way).
    store_path: str | None = None


class GatewayMetrics:
    """Daemon-level counters and histograms (served by ``GET /metrics``)."""

    def __init__(self) -> None:
        self.http_requests = Counter("http_requests", "HTTP requests handled")
        self.runs_submitted = Counter("runs_submitted", "runs accepted")
        self.runs_completed = Counter("runs_completed", "runs finished ok")
        self.runs_failed = Counter("runs_failed", "runs failed or timed out")
        self.batches_submitted = Counter("batches_submitted", "batches accepted")
        self.batches_completed = Counter("batches_completed", "batches finished ok")
        self.batches_failed = Counter("batches_failed", "batches failed")
        self.rejected_draining = Counter(
            "rejected_draining", "submissions refused while draining"
        )
        self.sse_streams = Counter("sse_streams", "event streams served")
        self.queue_wait_s = Histogram("queue_wait_s", "admission queue wait (s)")
        self.run_wall_s = Histogram("run_wall_s", "run wall time (s)")
        #: Span-derived phase durations, one histogram per phase span name.
        self.phase_seconds: dict[str, Histogram] = {}

    def observe_phases(self, spans) -> None:
        """Fold one traced run's phase-span durations into the histograms."""
        for span in spans:
            name = span.get("name")
            if name not in PHASE_SPANS:
                continue
            histogram = self.phase_seconds.get(name)
            if histogram is None:
                histogram = self.phase_seconds[name] = Histogram(
                    f"phase_{name}", f"duration of {name} spans (s)"
                )
            histogram.observe(span["duration_s"])

    def counters(self) -> tuple[Counter, ...]:
        return (
            self.http_requests,
            self.runs_submitted,
            self.runs_completed,
            self.runs_failed,
            self.batches_submitted,
            self.batches_completed,
            self.batches_failed,
            self.rejected_draining,
            self.sse_streams,
        )

    def histograms(self) -> tuple[Histogram, ...]:
        return (self.queue_wait_s, self.run_wall_s)


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}") from None


class _HttpError(Exception):
    """Routed straight to an error response."""

    def __init__(self, status: int, body: dict):
        super().__init__(body)
        self.status = status
        self.body = body


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class GatewayServer:
    """The scheduler-as-a-service daemon over :class:`~repro.api.session.Session`.

    Lifecycle::

        server = GatewayServer(GatewayConfig(port=0))
        await server.start()          # binds; server.port is the real port
        ...                           # requests are served by the loop
        await server.drain()          # 503 new work, finish in-flight, stop
    """

    def __init__(self, config: GatewayConfig | None = None):
        self.config = config or GatewayConfig()
        from repro.store.content import resolve_store

        self.content_store = resolve_store(self.config.store_path)
        self.store = SessionStore(self.content_store)
        self.registry = RunRegistry()
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_per_tenant=self.config.max_per_tenant,
            queue_timeout_s=self.config.queue_timeout_s,
        )
        self.metrics = GatewayMetrics()
        #: One shared ServiceMetrics across every batch submission's
        #: SimulationService, so /metrics aggregates batch behaviour too.
        self.service_metrics = ServiceMetrics()
        self.draining = False
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        # Simulations run here; +1 head-room so a drain-time batch never
        # deadlocks behind the cap.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.max_concurrent + 1,
            thread_name_prefix="repro-gateway",
        )
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """Graceful drain on SIGTERM/SIGINT (daemon mode)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: self._spawn(self.drain())
                )
            except NotImplementedError:  # pragma: no cover — non-POSIX loops
                pass

    async def wait_closed(self) -> None:
        """Block until :meth:`drain`/:meth:`aclose` finished."""
        await self._closed.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish everything accepted.

        Reentrant: a second SIGTERM (or a drain after the flag was already
        raised) waits for the same live records and closes the same server —
        every caller observes the shutdown complete.
        """
        self.draining = True
        for record in self.registry.live():
            await record.wait_done()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop listening and release the executor (does not wait for work)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)
        self._closed.set()

    def _spawn(self, coroutine) -> asyncio.Task:
        """Create a tracked background task (kept referenced until done)."""
        task = asyncio.get_running_loop().create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None  # client connected and left
        if len(line) > _MAX_REQUEST_LINE:
            raise _HttpError(400, protocol.error_body("http", "request line too long"))
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(
                400, protocol.error_body("http", f"malformed request line {line!r}")
            ) from None
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_COUNT):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, protocol.error_body("http", "too many headers"))
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                size = int(length)
            except ValueError:
                raise _HttpError(
                    400, protocol.error_body("http", f"bad Content-Length {length!r}")
                ) from None
            if size > self.config.max_body_bytes:
                raise _HttpError(
                    413,
                    protocol.error_body(
                        "http", f"body of {size} bytes exceeds the limit"
                    ),
                )
            body = await reader.readexactly(size)
        split = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(split.query).items()
        }
        return _Request(method.upper(), split.path, query, headers, body)

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        body: Mapping[str, Any] | None,
        *,
        content_type: str = "application/json",
        keep_alive: bool = False,
    ) -> None:
        payload = b""
        if body is not None:
            payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {connection}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        writer.write(payload)

    @staticmethod
    def _write_text(
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
        *,
        keep_alive: bool = False,
    ) -> None:
        payload = text.encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {connection}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        writer.write(payload)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            again = True
            while again:
                again = False
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), _READ_TIMEOUT_S
                    )
                    if request is None:
                        return
                    self.metrics.http_requests.increment()
                    keep_alive = (
                        request.headers.get("connection", "").strip().lower()
                        == "keep-alive"
                    )
                    again = await self._route(request, writer, keep_alive)
                except _HttpError as error:
                    self._write_response(writer, error.status, error.body)
                except ProtocolError as error:
                    self._write_response(writer, 400, protocol.error_from(error))
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    ConnectionError,
                ):
                    return
                except Exception as error:  # noqa: BLE001 — last-resort 500
                    self._write_response(writer, 500, protocol.error_from(error))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # A kept-alive handler parked on the next read may be cancelled
            # at shutdown; wait_closed() then re-raises the cancellation.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _route(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        """Dispatch one request; return True when the socket may be reused.

        ``keep_alive`` is what the client asked for; every plain response
        echoes it, while SSE streams and error paths always close.
        """
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            self._write_response(writer, 200, self._health(), keep_alive=keep_alive)
            return keep_alive
        if path == "/metrics" and method == "GET":
            self._write_text(
                writer,
                200,
                self._prometheus(),
                "text/plain; version=0.0.4",
                keep_alive=keep_alive,
            )
            return keep_alive
        if path == "/runs" and method == "POST":
            await self._submit_run(request, writer, keep_alive)
            return keep_alive
        if path == "/batches" and method == "POST":
            await self._submit_batch(request, writer, keep_alive)
            return keep_alive
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] in ("runs", "batches") and method == "GET":
            lookup = self.registry.run if parts[0] == "runs" else self.registry.batch
            record = lookup(parts[1])
            if record is None:
                raise _HttpError(
                    404,
                    protocol.error_body(
                        "not_found", f"no such {parts[0][:-1]}: {parts[1]!r}"
                    ),
                )
            if len(parts) == 2:
                self._write_response(
                    writer, 200, record.status(), keep_alive=keep_alive
                )
                return keep_alive
            if len(parts) == 3 and parts[2] == "wait":
                await record.wait_done()
                self._write_response(
                    writer, 200, record.status(), keep_alive=keep_alive
                )
                return keep_alive
            if len(parts) == 3 and parts[2] == "events" and parts[0] == "runs":
                await self._stream_events(request, record, writer)
                return False
            if len(parts) == 3 and parts[2] == "trace" and parts[0] == "runs":
                self._write_response(
                    writer,
                    200,
                    {
                        "id": record.id,
                        "trace_id": record.trace_id,
                        "state": record.state.value,
                        "spans": record.trace or [],
                    },
                    keep_alive=keep_alive,
                )
                return keep_alive
        if path in ("/runs", "/batches") or (
            len(parts) >= 2 and parts[0] in ("runs", "batches")
        ):
            raise _HttpError(
                405, protocol.error_body("http", f"{method} not allowed on {path}")
            )
        raise _HttpError(404, protocol.error_body("not_found", f"no route {path!r}"))

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _health(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "running": self.admission.running_total,
            "queued": self.admission.queued_total,
            "records": self.registry.counts(),
            "tenants": self.store.tenants(),
        }

    def _prometheus(self) -> str:
        lines = prometheus_lines(
            self.metrics.counters(),
            self.metrics.histograms(),
            prefix="repro_gateway",
        )
        lines.append("# TYPE repro_gateway_running gauge")
        lines.append(f"repro_gateway_running {self.admission.running_total}")
        lines.append("# TYPE repro_gateway_queued gauge")
        lines.append(f"repro_gateway_queued {self.admission.queued_total}")
        lines.append("# TYPE repro_gateway_running_peak gauge")
        lines.append(f"repro_gateway_running_peak {self.admission.peak_total}")
        lines.append("# TYPE repro_gateway_tenant_running_peak gauge")
        for tenant, peak in sorted(self.admission.peak_per_tenant.items()):
            lines.append(
                "repro_gateway_tenant_running_peak"
                f'{{tenant="{escape_label_value(tenant)}"}} {peak}'
            )
        lines.extend(
            prometheus_grouped_lines(
                "phase_seconds",
                "span-derived scheduling phase durations (s)",
                self.metrics.phase_seconds,
                prefix="repro_gateway",
            )
        )
        lines.extend(self._store_lines())
        return "\n".join(lines) + "\n" + self.service_metrics.to_prometheus()

    #: Store counter → Prometheus series description.  Every series is
    #: ``repro_store_<name>`` with one sample per cache kind.
    _STORE_SERIES = {
        "hits": "store lookups served (local front or backend)",
        "local_hits": "store lookups served by the local LRU front",
        "misses": "store lookups that fell through to a recompute",
        "puts": "entries written through to the backend",
        "corrupt": "corrupted or truncated entries degraded to misses",
        "errors": "backend failures degraded to misses",
        "bytes_read": "payload bytes deserialised from the backend",
        "bytes_written": "payload bytes written to the backend",
        "evictions": "local-front LRU evictions",
    }

    def _store_lines(self) -> list[str]:
        """``repro_store_*`` series of the shared content store (if any)."""
        if self.content_store is None:
            return []
        counters = self.content_store.counters()
        lines: list[str] = []
        for stat, description in self._STORE_SERIES.items():
            grouped = {kind: values[stat] for kind, values in counters.items()}
            lines.extend(
                prometheus_grouped_lines(
                    f"store_{stat}",
                    description,
                    grouped,
                    prefix="repro",
                    label="kind",
                    metric_type="counter",
                )
            )
        return lines

    def _refuse_if_draining(self) -> None:
        if self.draining:
            self.metrics.rejected_draining.increment()
            raise _HttpError(
                503,
                protocol.error_body(
                    "draining", "daemon is draining; resubmit elsewhere"
                ),
            )

    async def _submit_run(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        self._refuse_if_draining()
        submission = protocol.parse_run_submission(request.json())
        trace_id = uuid.uuid4().hex[:16] if self.config.trace_runs else None
        record = self.registry.new_run(
            submission.tenant, submission.spec.name, trace_id=trace_id
        )
        self.metrics.runs_submitted.increment()
        self._spawn(self._execute_run(record, submission))
        self._write_response(writer, 202, record.status(), keep_alive=keep_alive)

    async def _submit_batch(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        self._refuse_if_draining()
        submission = protocol.parse_batch_submission(request.json())
        record = self.registry.new_batch(
            submission.tenant, submission.spec.name, submission.trials
        )
        self.metrics.batches_submitted.increment()
        self._spawn(self._execute_batch(record, submission))
        self._write_response(writer, 202, record.status(), keep_alive=keep_alive)

    async def _stream_events(
        self, request: _Request, record, writer: asyncio.StreamWriter
    ) -> None:
        try:
            start = int(request.query.get("from", "0"))
        except ValueError:
            raise ProtocolError(
                f"events ?from= must be an integer, got {request.query['from']!r}"
            ) from None
        self.metrics.sse_streams.increment()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        index = max(0, start)
        while True:
            events, done = await record.wait_events(index)
            for payload in events:
                writer.write(
                    protocol.sse_frame(payload, index, trace_id=record.trace_id)
                )
                index += 1
            await writer.drain()  # SSE backpressure: respect the socket
            if done and index >= len(record.events):
                break
        if record.state is RunState.FAILED and record.error is not None:
            # A terminal frame distinct from any RunEventKind, so stream
            # consumers need no second status request to learn the outcome.
            writer.write(
                protocol.sse_frame(
                    {"kind": "error", "time": record.finished_at, "data": record.error},
                    index,
                    trace_id=record.trace_id,
                )
            )
            await writer.drain()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _queue_budget(
        self, deadline: float | None
    ) -> float | None:
        """Remaining admission wait allowed by the submission deadline."""
        if deadline is None:
            return self.admission.queue_timeout_s
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise AdmissionTimeout("submission deadline expired while queued")
        if self.admission.queue_timeout_s is None:
            return remaining
        return min(remaining, self.admission.queue_timeout_s)

    async def _execute_run(self, record, submission) -> None:
        deadline = (
            time.monotonic() + submission.timeout_s
            if submission.timeout_s is not None
            else None
        )
        loop = asyncio.get_running_loop()
        bridge = EventBridge(loop, record.append_event)
        try:
            async with self.admission.slot(
                record.tenant, self._queue_budget(deadline)
            ):
                record.mark_running()
                self.metrics.queue_wait_s.observe(time.time() - record.submitted_at)
                started = time.perf_counter()

                def work() -> list[dict] | None:
                    session = self.store.session_for(
                        submission.tenant, submission.session, submission.spec
                    )
                    tracer = (
                        Tracer(trace_id=record.trace_id, name=f"gateway:{record.id}")
                        if record.trace_id is not None
                        else None
                    )

                    def drive() -> None:
                        with session.stream(engine=submission.engine) as events:
                            for event in events:
                                if (
                                    deadline is not None
                                    and time.monotonic() > deadline
                                ):
                                    raise RunTimeout(
                                        f"run {record.id} exceeded "
                                        f"timeout_s={submission.timeout_s:g}"
                                    )
                                bridge.emit(event.to_dict())

                    if tracer is None:
                        drive()
                        return None
                    with tracer:
                        drive()
                    return tracer.span_dicts()

                spans = await loop.run_in_executor(self._executor, work)
                self.metrics.run_wall_s.observe(time.perf_counter() - started)
                if spans is not None:
                    # Back on the loop thread: safe to publish on the record.
                    record.trace = spans
                    self.metrics.observe_phases(spans)
            # The END frame is the last event the bridge delivered (its
            # call_soon_threadsafe precedes the executor completion signal).
            if not record.events or record.events[-1].get("kind") != "end":
                raise ReproError("run finished without an END event")
            record.finish(record.events[-1]["data"]["log"])
            self.metrics.runs_completed.increment()
        except (AdmissionTimeout, RunTimeout) as error:
            bridge.close()
            record.fail(protocol.error_body("timeout", str(error)))
            self.metrics.runs_failed.increment()
        except Exception as error:  # noqa: BLE001 — failure isolation per run
            bridge.close()
            record.fail(protocol.error_from(error))
            self.metrics.runs_failed.increment()

    async def _execute_batch(self, record, submission) -> None:
        deadline = (
            time.monotonic() + submission.timeout_s
            if submission.timeout_s is not None
            else None
        )
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot(
                record.tenant, self._queue_budget(deadline)
            ):
                record.mark_running()
                self.metrics.queue_wait_s.observe(time.time() - record.submitted_at)

                def work() -> dict:
                    from repro.service.pool import SimulationService

                    session = self.store.session_for(
                        submission.tenant, submission.session, submission.spec
                    )
                    service = SimulationService(
                        workers=self.config.batch_workers,
                        metrics=self.service_metrics,
                        kernel_caches=session.kernel_caches,
                        store=self.content_store,
                    )
                    results = session.run_batch(
                        trials=submission.trials,
                        seeds=submission.seeds,
                        service=service,
                    )
                    return results.to_dict()

                record.finish(await loop.run_in_executor(self._executor, work))
                self.metrics.batches_completed.increment()
        except AdmissionTimeout as error:
            record.fail(protocol.error_body("timeout", str(error)))
            self.metrics.batches_failed.increment()
        except Exception as error:  # noqa: BLE001
            record.fail(protocol.error_from(error))
            self.metrics.batches_failed.increment()


async def serve(config: GatewayConfig | None = None) -> None:
    """Run the daemon until SIGTERM/SIGINT completes a graceful drain."""
    server = GatewayServer(config)
    await server.start()
    server.install_signal_handlers()
    print(
        f"repro gateway listening on http://{server.config.host}:{server.port} "
        f"(max {server.config.max_concurrent} concurrent, "
        f"{server.config.max_per_tenant} per tenant)",
        flush=True,
    )
    await server.wait_closed()


class InProcessGateway:
    """A daemon on a background thread: tests, benchmarks and examples.

    ::

        with InProcessGateway(GatewayConfig(port=0)) as gateway:
            client = GatewayClient(gateway.base_url)
            ...

    Exiting the ``with`` block drains the server (in-flight work finishes)
    and joins the thread.
    """

    def __init__(self, config: GatewayConfig | None = None):
        self._config = config or GatewayConfig(port=0)
        self.server: GatewayServer | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway-daemon", daemon=True
        )

    @property
    def base_url(self) -> str:
        return f"http://{self._config.host}:{self.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surfaced in __enter__
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = GatewayServer(self._config)
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001
            self._startup_error = error
            self._ready.set()
            raise
        self.port = self.server.port
        self._ready.set()
        await self.server.wait_closed()

    def __enter__(self) -> "InProcessGateway":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        loop, server = self._loop, self.server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: loop.create_task(server.drain())
            )
        self._thread.join(timeout=120)


__all__ = [
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayServer",
    "InProcessGateway",
    "RunTimeout",
    "serve",
]
