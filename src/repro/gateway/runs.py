"""Run and batch records: the daemon's in-memory job registry.

A :class:`RunRecord` is the server-side life of one submitted experiment:
``queued → running → done | failed``.  It buffers every serialised
:class:`~repro.api.events.RunEvent` (so late subscribers replay from the
start — SSE ``id``\\ s are simply list indices) and wakes SSE streamers
through an :class:`asyncio.Event` as events arrive.

All mutators are plain synchronous methods that **must run on the event
loop thread** — executor threads hand events over via
``loop.call_soon_threadsafe`` (see :mod:`repro.gateway.bridge`), which also
guarantees events are appended in emission order.  Waiters are coroutines
on the same loop, so the check-then-wait pattern is race-free without
locks.

:class:`BatchRecord` is the coarser cousin for ``POST /batches``: no event
stream, just a state and the batch summary (with its deterministic result
fingerprint) once done.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from typing import Any, Mapping


class RunState(enum.Enum):
    """Lifecycle of a submitted run or batch."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (RunState.DONE, RunState.FAILED)


class _Record:
    """State shared by run and batch records (loop-thread mutation only)."""

    def __init__(self, record_id: str, tenant: str, spec_name: str):
        self.id = record_id
        self.tenant = tenant
        self.spec_name = spec_name
        self.trace_id: str | None = None
        self.state = RunState.QUEUED
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: dict | None = None
        self.result: dict | None = None
        self._changed = asyncio.Event()

    def _notify(self) -> None:
        self._changed.set()

    async def _wait_change(self) -> None:
        self._changed.clear()
        await self._changed.wait()

    def mark_running(self) -> None:
        self.state = RunState.RUNNING
        self.started_at = time.time()
        self._notify()

    def fail(self, error: Mapping[str, Any]) -> None:
        self.error = dict(error)
        self.state = RunState.FAILED
        self.finished_at = time.time()
        self._notify()

    def finish(self, result: Mapping[str, Any]) -> None:
        self.result = dict(result)
        self.state = RunState.DONE
        self.finished_at = time.time()
        self._notify()

    async def wait_done(self) -> None:
        """Block until the record reaches a terminal state."""
        while not self.state.terminal:
            await self._wait_change()

    def _base_status(self) -> dict:
        status = {
            "id": self.id,
            "tenant": self.tenant,
            "spec_name": self.spec_name,
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.trace_id is not None:
            status["trace_id"] = self.trace_id
        if self.error is not None:
            status["error"] = self.error
        if self.result is not None:
            status["result"] = self.result
        return status


class RunRecord(_Record):
    """One submitted experiment run and its buffered event stream."""

    def __init__(self, record_id: str, tenant: str, spec_name: str):
        super().__init__(record_id, tenant, spec_name)
        self.events: list[dict] = []
        #: Completed span dictionaries (set once, on the loop thread, after
        #: a traced run finishes); ``GET /runs/{id}/trace`` serves these.
        self.trace: list[dict] | None = None

    def append_event(self, payload: dict) -> None:
        self.events.append(payload)
        self._notify()

    async def wait_events(self, start: int) -> tuple[list[dict], bool]:
        """New events from index ``start`` on, plus "record is terminal".

        Returns as soon as there is at least one new event *or* the record
        reached a terminal state (whichever comes first), so SSE streamers
        neither poll nor hang after a failure.
        """
        while len(self.events) <= start and not self.state.terminal:
            await self._wait_change()
        return list(self.events[start:]), self.state.terminal

    def status(self) -> dict:
        status = self._base_status()
        status["events"] = len(self.events)
        return status


class BatchRecord(_Record):
    """One submitted batch (seeded trials of a spec)."""

    def __init__(self, record_id: str, tenant: str, spec_name: str, trials: int):
        super().__init__(record_id, tenant, spec_name)
        self.trials = trials

    def status(self) -> dict:
        status = self._base_status()
        status["trials"] = self.trials
        return status


class RunRegistry:
    """Id-keyed stores of every record the daemon has accepted.

    Records are kept for the daemon's lifetime, bounded by
    ``max_records``: the oldest *terminal* records are evicted first, so an
    id stays resolvable while its run is still live.
    """

    def __init__(self, max_records: int = 10_000):
        self._max_records = max_records
        self._runs: dict[str, RunRecord] = {}
        self._batches: dict[str, BatchRecord] = {}
        self._counter = itertools.count(1)

    def new_run(
        self, tenant: str, spec_name: str, trace_id: str | None = None
    ) -> RunRecord:
        record = RunRecord(f"run-{next(self._counter):06d}", tenant, spec_name)
        record.trace_id = trace_id
        self._runs[record.id] = record
        self._evict(self._runs)
        return record

    def new_batch(self, tenant: str, spec_name: str, trials: int) -> BatchRecord:
        record = BatchRecord(
            f"batch-{next(self._counter):06d}", tenant, spec_name, trials
        )
        self._batches[record.id] = record
        self._evict(self._batches)
        return record

    def run(self, record_id: str) -> RunRecord | None:
        return self._runs.get(record_id)

    def batch(self, record_id: str) -> BatchRecord | None:
        return self._batches.get(record_id)

    def live(self) -> list[_Record]:
        """Every record not yet in a terminal state (drain waits on these)."""
        records: list[_Record] = []
        for store in (self._runs, self._batches):
            records.extend(r for r in store.values() if not r.state.terminal)
        return records

    def counts(self) -> dict[str, int]:
        """State → record count, across runs and batches (for /healthz)."""
        counts: dict[str, int] = {state.value: 0 for state in RunState}
        for store in (self._runs, self._batches):
            for record in store.values():
                counts[record.state.value] += 1
        return counts

    def _evict(self, store: dict) -> None:
        while len(store) > self._max_records:
            for record_id, record in list(store.items()):
                if record.state.terminal:
                    del store[record_id]
                    break
            else:  # nothing terminal to drop — accept the overshoot
                return


__all__ = ["BatchRecord", "RunRecord", "RunRegistry", "RunState"]
