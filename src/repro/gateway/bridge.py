"""Bridging the synchronous Session worker into asyncio, with backpressure.

A gateway run executes :meth:`repro.api.session.Session.stream` on an
executor thread while its consumers — the run record's event buffer and
any number of SSE subscribers — live on the asyncio event loop.  The
:class:`EventBridge` is the one-way pipe between the two worlds:

* the executor thread calls :meth:`EventBridge.emit` per event;
* the event is delivered on the loop thread via
  ``loop.call_soon_threadsafe`` (FIFO, so event order is preserved);
* a :class:`threading.BoundedSemaphore` caps the number of events in
  flight — when the loop falls behind (slow SSE consumers, a busy
  daemon), ``emit`` blocks the *simulation* thread, which in turn stalls
  the bounded queue inside ``Session.stream``.  Backpressure propagates
  all the way into the simulation instead of ballooning memory.
"""

from __future__ import annotations

import threading
from typing import Any, Callable


class BridgeClosed(RuntimeError):
    """Raised on emit after the loop side shut the bridge down."""


class EventBridge:
    """One-way, order-preserving, bounded pipe: worker thread → event loop.

    Parameters
    ----------
    loop:
        The event loop that owns the consumer side.
    deliver:
        Loop-thread callback invoked with each emitted item (e.g.
        ``RunRecord.append_event``).
    capacity:
        Maximum items in flight before :meth:`emit` blocks the producer.
    """

    def __init__(
        self,
        loop,
        deliver: Callable[[Any], None],
        capacity: int = 256,
    ):
        if capacity < 1:
            raise ValueError(f"bridge capacity must be positive, got {capacity}")
        self._loop = loop
        self._deliver = deliver
        self._slots = threading.BoundedSemaphore(capacity)
        self._closed = threading.Event()

    def emit(self, item: Any) -> None:
        """Hand one item to the loop (called on the worker thread).

        Blocks while ``capacity`` items are already in flight; raises
        :class:`BridgeClosed` if the bridge was shut down (the executor
        thread should treat that as "stop simulating").
        """
        while not self._slots.acquire(timeout=0.1):
            if self._closed.is_set():
                raise BridgeClosed("event bridge is closed")
        if self._closed.is_set():
            self._slots.release()
            raise BridgeClosed("event bridge is closed")
        try:
            self._loop.call_soon_threadsafe(self._pump, item)
        except RuntimeError:  # loop already closed (daemon shutting down)
            self._slots.release()
            self._closed.set()
            raise BridgeClosed("event loop is gone") from None

    def _pump(self, item: Any) -> None:
        self._slots.release()
        if not self._closed.is_set():
            self._deliver(item)

    def close(self) -> None:
        """Stop delivering and unblock any producer stuck in :meth:`emit`.

        Safe from either side; idempotent.  Items already scheduled on the
        loop are dropped, not delivered — close only when the consumer no
        longer cares (run failed, daemon stopping).
        """
        self._closed.set()


__all__ = ["BridgeClosed", "EventBridge"]
