"""Kahn process network (KPN) graphs.

A KPN graph consists of *processes* connected by FIFO *channels*.  Every
process carries the number of reference compute cycles it executes over one
full run of the application; every channel carries the amount of data it
transports over one full run.  The paper's applications are dataflow
applications in exactly this style (they were profiled with the Silexica SLX
tool suite); the mapping simulator only needs these aggregate quantities plus
the per-iteration traces from :mod:`repro.dataflow.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import DataflowError


@dataclass(frozen=True)
class Process:
    """One KPN process.

    Parameters
    ----------
    name:
        Unique process name within its graph.
    cycles:
        Reference compute cycles the process executes over one full run of
        the application (on a performance-factor-1.0 core).
    """

    name: str
    cycles: float

    def __post_init__(self) -> None:
        if not self.name:
            raise DataflowError("process name must not be empty")
        if self.cycles <= 0:
            raise DataflowError(f"process {self.name!r}: cycles must be positive")


@dataclass(frozen=True)
class Channel:
    """A FIFO channel between two processes.

    Parameters
    ----------
    name:
        Unique channel name within its graph.
    source, target:
        Names of the producing and consuming processes.
    bytes_transferred:
        Total bytes moved through the channel over one full application run.
    """

    name: str
    source: str
    target: str
    bytes_transferred: float

    def __post_init__(self) -> None:
        if not self.name:
            raise DataflowError("channel name must not be empty")
        if self.source == self.target:
            raise DataflowError(f"channel {self.name!r} connects a process to itself")
        if self.bytes_transferred < 0:
            raise DataflowError(f"channel {self.name!r}: negative data volume")


class KPNGraph:
    """A Kahn process network.

    Parameters
    ----------
    name:
        Application/graph name.
    processes:
        The processes of the network (at least one).
    channels:
        The FIFO channels; both endpoints must be declared processes.

    Examples
    --------
    >>> graph = KPNGraph("pipe", [Process("a", 1e9), Process("b", 2e9)],
    ...                  [Channel("c0", "a", "b", 1e6)])
    >>> graph.num_processes
    2
    >>> graph.successors("a")
    ('b',)
    """

    def __init__(
        self,
        name: str,
        processes: Iterable[Process],
        channels: Iterable[Channel] = (),
    ):
        if not name:
            raise DataflowError("graph name must not be empty")
        self._name = name
        self._processes = tuple(processes)
        self._channels = tuple(channels)
        if not self._processes:
            raise DataflowError(f"graph {name!r} has no processes")

        names = [p.name for p in self._processes]
        if len(set(names)) != len(names):
            raise DataflowError(f"graph {name!r} has duplicate process names")
        self._by_name: Mapping[str, Process] = {p.name: p for p in self._processes}

        channel_names = [c.name for c in self._channels]
        if len(set(channel_names)) != len(channel_names):
            raise DataflowError(f"graph {name!r} has duplicate channel names")
        for channel in self._channels:
            for endpoint in (channel.source, channel.target):
                if endpoint not in self._by_name:
                    raise DataflowError(
                        f"channel {channel.name!r} references unknown process {endpoint!r}"
                    )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The graph (application) name."""
        return self._name

    @property
    def processes(self) -> tuple[Process, ...]:
        """All processes of the graph."""
        return self._processes

    @property
    def channels(self) -> tuple[Channel, ...]:
        """All channels of the graph."""
        return self._channels

    @property
    def num_processes(self) -> int:
        """Number of processes."""
        return len(self._processes)

    @property
    def process_names(self) -> tuple[str, ...]:
        """Process names in declaration order."""
        return tuple(p.name for p in self._processes)

    def process(self, name: str) -> Process:
        """Return the process called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DataflowError(f"graph {self._name!r} has no process {name!r}") from None

    def __iter__(self) -> Iterator[Process]:
        return iter(self._processes)

    def __repr__(self) -> str:
        return (
            f"KPNGraph({self._name!r}, {len(self._processes)} processes, "
            f"{len(self._channels)} channels)"
        )

    # ------------------------------------------------------------------ #
    # Aggregate queries used by the mapping simulator and the DSE
    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> float:
        """Total reference compute cycles of one full application run."""
        return sum(p.cycles for p in self._processes)

    @property
    def total_bytes(self) -> float:
        """Total channel traffic of one full application run."""
        return sum(c.bytes_transferred for c in self._channels)

    def successors(self, process_name: str) -> tuple[str, ...]:
        """Names of processes fed by ``process_name``."""
        self.process(process_name)
        return tuple(c.target for c in self._channels if c.source == process_name)

    def predecessors(self, process_name: str) -> tuple[str, ...]:
        """Names of processes feeding ``process_name``."""
        self.process(process_name)
        return tuple(c.source for c in self._channels if c.target == process_name)

    def channels_between(self, source: str, target: str) -> tuple[Channel, ...]:
        """All channels from ``source`` to ``target``."""
        return tuple(
            c for c in self._channels if c.source == source and c.target == target
        )

    def is_connected(self) -> bool:
        """Return ``True`` iff the undirected graph is connected."""
        if self.num_processes <= 1:
            return True
        adjacency: dict[str, set[str]] = {p.name: set() for p in self._processes}
        for channel in self._channels:
            adjacency[channel.source].add(channel.target)
            adjacency[channel.target].add(channel.source)
        seen = {self._processes[0].name}
        frontier = [self._processes[0].name]
        while frontier:
            current = frontier.pop()
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == self.num_processes

    def scaled(self, factor: float, name: str | None = None) -> "KPNGraph":
        """Return a copy of the graph with all cycles and traffic scaled.

        Used to model different input-data sizes: a larger input multiplies
        both the compute work and the communication volume.
        """
        if factor <= 0:
            raise DataflowError("scale factor must be positive")
        scaled_name = name or f"{self._name}x{factor:g}"
        processes = [Process(p.name, p.cycles * factor) for p in self._processes]
        channels = [
            Channel(c.name, c.source, c.target, c.bytes_transferred * factor)
            for c in self._channels
        ]
        return KPNGraph(scaled_name, processes, channels)
