"""Per-process execution traces.

The paper's profiling flow records, for every process of a dataflow
application, how its compute work is distributed over the iterations of the
application.  The mapping simulator replays these traces to estimate the
execution time of a candidate mapping.  Since the original traces are not
available, :class:`TraceGenerator` synthesises them: the total reference
cycles of a process are split into a configurable number of iterations with
bounded random jitter, which preserves the only property the simulator relies
on — the per-iteration load of each process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.dataflow.graph import KPNGraph
from repro.exceptions import DataflowError


@dataclass(frozen=True)
class TraceSegment:
    """One iteration's worth of work of one process.

    Parameters
    ----------
    cycles:
        Reference compute cycles executed in this iteration.
    bytes_read, bytes_written:
        Channel traffic of the process in this iteration.
    """

    cycles: float
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise DataflowError("trace segment quantities must be non-negative")


class ProcessTrace:
    """The ordered iteration segments of one process."""

    def __init__(self, process_name: str, segments: Iterable[TraceSegment]):
        if not process_name:
            raise DataflowError("process name must not be empty")
        self._process_name = process_name
        self._segments = tuple(segments)
        if not self._segments:
            raise DataflowError(f"trace of {process_name!r} has no segments")

    @property
    def process_name(self) -> str:
        """Name of the traced process."""
        return self._process_name

    @property
    def segments(self) -> tuple[TraceSegment, ...]:
        """The per-iteration segments."""
        return self._segments

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[TraceSegment]:
        return iter(self._segments)

    @property
    def total_cycles(self) -> float:
        """Total compute cycles over all iterations."""
        return sum(s.cycles for s in self._segments)

    @property
    def total_bytes(self) -> float:
        """Total read + written bytes over all iterations."""
        return sum(s.bytes_read + s.bytes_written for s in self._segments)


class TraceGenerator:
    """Synthesise per-process traces from a KPN graph.

    Parameters
    ----------
    iterations:
        Number of application iterations the trace covers.
    jitter:
        Relative jitter of the per-iteration load (0 = perfectly balanced
        iterations, 0.3 = iterations differ by up to ±30 %).
    seed:
        Seed for reproducible trace synthesis.

    Examples
    --------
    >>> from repro.dataflow import speaker_recognition
    >>> traces = TraceGenerator(iterations=10, seed=1).generate(speaker_recognition().graph)
    >>> len(traces)
    8
    """

    def __init__(self, iterations: int = 50, jitter: float = 0.2, seed: int = 0):
        if iterations <= 0:
            raise DataflowError("iterations must be positive")
        if not 0.0 <= jitter < 1.0:
            raise DataflowError("jitter must be in [0, 1)")
        self._iterations = iterations
        self._jitter = jitter
        self._seed = seed

    @property
    def iterations(self) -> int:
        """Number of iterations per generated trace."""
        return self._iterations

    def generate(self, graph: KPNGraph) -> dict[str, ProcessTrace]:
        """Generate one trace per process of ``graph``.

        The sum of the per-iteration cycles of each process equals the
        process's total cycles exactly (the last iteration absorbs rounding).
        """
        rng = random.Random(f"{self._seed}:{graph.name}")
        traces: dict[str, ProcessTrace] = {}
        for process in graph:
            read_bytes = sum(
                c.bytes_transferred for c in graph.channels if c.target == process.name
            )
            written_bytes = sum(
                c.bytes_transferred for c in graph.channels if c.source == process.name
            )
            segments = self._split(
                rng, process.cycles, read_bytes, written_bytes
            )
            traces[process.name] = ProcessTrace(process.name, segments)
        return traces

    def _split(
        self,
        rng: random.Random,
        total_cycles: float,
        total_read: float,
        total_written: float,
    ) -> list[TraceSegment]:
        """Split totals into per-iteration segments with bounded jitter.

        Jittered weights are normalised so the per-iteration cycles sum to the
        process total exactly.
        """
        weights = [
            1.0 + rng.uniform(-self._jitter, self._jitter)
            for _ in range(self._iterations)
        ]
        weight_sum = sum(weights)
        cycles = [total_cycles * w / weight_sum for w in weights]
        read_share = total_read / self._iterations
        write_share = total_written / self._iterations
        return [
            TraceSegment(c, read_share, write_share) for c in cycles
        ]


def merge_traces(traces: Mapping[str, ProcessTrace]) -> dict[str, float]:
    """Aggregate a trace set into per-process total cycles.

    Convenience helper for quick sanity checks and for the mapping simulator's
    aggregate mode.
    """
    return {name: trace.total_cycles for name, trace in traces.items()}
