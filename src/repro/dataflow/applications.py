"""Synthetic models of the three evaluation applications.

The paper profiles three dataflow applications on the Odroid XU4:

* *speaker recognition* — 8 processes (Bouraoui et al., PARMA-DITAM 2019),
* *audio filter* — a stereo frequency filter with 8 processes (Goens et al.),
* *pedestrian recognition* — 6 processes (provided by Silexica).

The originals are proprietary, so this module provides synthetic KPN graphs
with the same process counts and plausible structure: a pipeline with some
parallel stages for the audio filter, a feature-extraction/classification
pipeline for speaker recognition and a sliding-window detection pipeline for
pedestrian recognition.  The absolute cycle counts are chosen so that full
executions on the Odroid model take seconds to tens of seconds — the same
order of magnitude as Table II of the paper — and each application is
instantiated for several input-data sizes, mirroring the paper's benchmarking
with inputs of different sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dataflow.graph import Channel, KPNGraph, Process
from repro.exceptions import DataflowError

#: Reference cycles corresponding to one second on a little (A7 @1.5 GHz) core.
_GIGA = 1.0e9

#: Input-size scale factors used when instantiating the applications.
DEFAULT_INPUT_SIZES: Mapping[str, float] = {"small": 0.5, "medium": 1.0, "large": 2.0}


@dataclass(frozen=True)
class ApplicationModel:
    """A dataflow application together with its input-size variants.

    Attributes
    ----------
    name:
        Application name (e.g. ``"speaker_recognition"``).
    graph:
        The KPN graph at the *medium* (scale 1.0) input size.
    input_sizes:
        Mapping from input-size label to scale factor.
    """

    name: str
    graph: KPNGraph
    input_sizes: Mapping[str, float]

    def variant(self, size: str) -> KPNGraph:
        """The KPN graph scaled for the given input size label."""
        if size not in self.input_sizes:
            raise DataflowError(
                f"application {self.name!r} has no input size {size!r}; "
                f"known sizes: {sorted(self.input_sizes)}"
            )
        factor = self.input_sizes[size]
        return self.graph.scaled(factor, name=f"{self.name}/{size}")

    def variants(self) -> dict[str, KPNGraph]:
        """All input-size variants keyed by ``"<application>/<size>"``."""
        return {f"{self.name}/{size}": self.variant(size) for size in self.input_sizes}


def _pipeline_channels(process_names, bytes_per_hop: float) -> list[Channel]:
    """Chain consecutive processes with identical-volume channels."""
    return [
        Channel(f"ch_{src}_{dst}", src, dst, bytes_per_hop)
        for src, dst in zip(process_names, process_names[1:])
    ]


def speaker_recognition(
    input_sizes: Mapping[str, float] | None = None,
) -> ApplicationModel:
    """Synthetic 8-process speaker recognition pipeline.

    The structure follows the published description: audio framing, windowing,
    FFT, mel filter bank, MFCC, delta features, a GMM scoring stage and a
    decision stage.  Scoring dominates the compute load, which is what makes
    the application scale well to multiple cores.
    """
    processes = [
        Process("framing", 0.6 * _GIGA),
        Process("windowing", 0.8 * _GIGA),
        Process("fft", 2.4 * _GIGA),
        Process("mel_filter", 1.6 * _GIGA),
        Process("mfcc", 1.8 * _GIGA),
        Process("delta", 1.2 * _GIGA),
        Process("gmm_scoring", 5.2 * _GIGA),
        Process("decision", 0.4 * _GIGA),
    ]
    names = [p.name for p in processes]
    channels = _pipeline_channels(names, 2.0e6)
    # The scoring stage additionally receives the raw MFCC features.
    channels.append(Channel("ch_mfcc_gmm", "mfcc", "gmm_scoring", 1.0e6))
    graph = KPNGraph("speaker_recognition", processes, channels)
    return ApplicationModel(
        "speaker_recognition", graph, dict(input_sizes or DEFAULT_INPUT_SIZES)
    )


def audio_filter(input_sizes: Mapping[str, float] | None = None) -> ApplicationModel:
    """Synthetic 8-process stereo frequency filter.

    Two parallel per-channel chains (split → FFT → filter → IFFT) joined by a
    final mixing stage, which is the classic structure of the stereo audio
    filter used in prior work of the same group.
    """
    processes = [
        Process("source", 0.5 * _GIGA),
        Process("split", 0.4 * _GIGA),
        Process("fft_left", 2.2 * _GIGA),
        Process("fft_right", 2.2 * _GIGA),
        Process("filter_left", 1.4 * _GIGA),
        Process("filter_right", 1.4 * _GIGA),
        Process("ifft", 2.6 * _GIGA),
        Process("sink", 0.3 * _GIGA),
    ]
    channels = [
        Channel("ch_src_split", "source", "split", 4.0e6),
        Channel("ch_split_fl", "split", "fft_left", 2.0e6),
        Channel("ch_split_fr", "split", "fft_right", 2.0e6),
        Channel("ch_fl_filtl", "fft_left", "filter_left", 2.0e6),
        Channel("ch_fr_filtr", "fft_right", "filter_right", 2.0e6),
        Channel("ch_filtl_ifft", "filter_left", "ifft", 2.0e6),
        Channel("ch_filtr_ifft", "filter_right", "ifft", 2.0e6),
        Channel("ch_ifft_sink", "ifft", "sink", 4.0e6),
    ]
    graph = KPNGraph("audio_filter", processes, channels)
    return ApplicationModel("audio_filter", graph, dict(input_sizes or DEFAULT_INPUT_SIZES))


def pedestrian_recognition(
    input_sizes: Mapping[str, float] | None = None,
) -> ApplicationModel:
    """Synthetic 6-process pedestrian recognition pipeline.

    Image pre-processing, a sliding-window HOG feature extraction split over
    two parallel workers, an SVM classification stage and a non-maximum
    suppression stage.  Feature extraction dominates the load.
    """
    processes = [
        Process("preprocess", 1.0 * _GIGA),
        Process("hog_top", 3.6 * _GIGA),
        Process("hog_bottom", 3.6 * _GIGA),
        Process("svm", 2.8 * _GIGA),
        Process("nms", 0.6 * _GIGA),
        Process("output", 0.3 * _GIGA),
    ]
    channels = [
        Channel("ch_pre_top", "preprocess", "hog_top", 3.0e6),
        Channel("ch_pre_bottom", "preprocess", "hog_bottom", 3.0e6),
        Channel("ch_top_svm", "hog_top", "svm", 1.5e6),
        Channel("ch_bottom_svm", "hog_bottom", "svm", 1.5e6),
        Channel("ch_svm_nms", "svm", "nms", 0.5e6),
        Channel("ch_nms_out", "nms", "output", 0.2e6),
    ]
    graph = KPNGraph("pedestrian_recognition", processes, channels)
    return ApplicationModel(
        "pedestrian_recognition", graph, dict(input_sizes or DEFAULT_INPUT_SIZES)
    )


def paper_applications() -> dict[str, ApplicationModel]:
    """The three evaluation applications keyed by name."""
    models = [speaker_recognition(), audio_filter(), pedestrian_recognition()]
    return {model.name: model for model in models}
