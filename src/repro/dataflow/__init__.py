"""Dataflow (KPN) application models.

The paper's evaluation uses three dataflow applications — a speaker
recognition pipeline (8 processes), an audio filter (8 processes) and a
pedestrian recognition application (6 processes) — profiled on the Odroid XU4.
The applications themselves are proprietary (Silexica), so this package builds
synthetic KPN models with the same process counts and realistic compute /
communication ratios.  The models are consumed by the trace-driven mapping
simulator in :mod:`repro.mapping` and by the design-space exploration in
:mod:`repro.dse` to regenerate the per-application operating-point tables.
"""

from repro.dataflow.graph import Channel, KPNGraph, Process
from repro.dataflow.trace import ProcessTrace, TraceGenerator, TraceSegment
from repro.dataflow.applications import (
    ApplicationModel,
    audio_filter,
    paper_applications,
    pedestrian_recognition,
    speaker_recognition,
)

__all__ = [
    "Process",
    "Channel",
    "KPNGraph",
    "TraceSegment",
    "ProcessTrace",
    "TraceGenerator",
    "ApplicationModel",
    "speaker_recognition",
    "audio_filter",
    "pedestrian_recognition",
    "paper_applications",
]
