"""Shared PEP 562 lazy-attribute machinery for package ``__init__`` modules.

Several package inits (:mod:`repro`, :mod:`repro.api`, :mod:`repro.service`)
re-export symbols whose defining modules are expensive to import or would
create import cycles if loaded eagerly.  Instead of three hand-rolled
``__getattr__``/``__dir__`` pairs, each declares a name → module table and
calls::

    __getattr__, __dir__ = lazy_attributes(globals(), _LAZY)
"""

from __future__ import annotations

import importlib
from typing import Callable, Mapping


def lazy_attributes(
    module_globals: dict, mapping: Mapping[str, str]
) -> tuple[Callable[[str], object], Callable[[], list]]:
    """Build the ``(__getattr__, __dir__)`` pair for a lazily-exporting package.

    ``mapping`` maps each public attribute name to the module that defines
    it.  Resolved attributes are cached in the package namespace, so every
    name is imported at most once.
    """
    module_name = module_globals["__name__"]

    def __getattr__(name: str):
        if name in mapping:
            value = getattr(importlib.import_module(mapping[name]), name)
            module_globals[name] = value
            return value
        raise AttributeError(f"module {module_name!r} has no attribute {name!r}")

    def __dir__() -> list:
        return sorted(set(module_globals) | set(mapping))

    return __getattr__, __dir__
