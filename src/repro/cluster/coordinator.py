"""Sharded batch execution with work stealing (:class:`ShardCoordinator`).

The service's executors fan a batch out job-by-job; the coordinator instead
splits a batch into contiguous **work units** (shards), gives every worker
its own unit deque, and lets idle workers *steal* from the busiest rival's
tail — so a batch whose job costs are skewed (one census trace next to many
motivational ones) still keeps every core busy without any cost model.

Execution modes:

* ``"thread"`` — units run on coordinator threads sharing the service's
  activation/kernel caches (and, transitively, a bound content store);
* ``"process"`` — units run in a shared :class:`ProcessPoolExecutor`; each
  worker process opens the content store by its path token, so shards warm
  each other through the store even across process boundaries.

Failure isolation is layered: a *job* that raises is already captured as an
``error`` result inside :func:`~repro.service.pool._simulate`; a *shard*
whose worker dies (a killed process, a broken pool) is retried up to
``max_retries`` times — on a fresh pool when the old one broke — and only
then marked failed, job by job, without touching any other shard.

Determinism: results are merged by absolute job index, so the batch
fingerprint is independent of worker count, unit size, steal order and
retry history — ``workers=1`` equals ``workers=N`` equals a warm-store
rerun, which the equivalence tests pin down.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import WorkloadError
from repro.kernel.caches import KernelCaches
from repro.service.cache import ActivationCache
from repro.service.jobs import BatchSpec, SimulationJob
from repro.service.pool import (
    BatchResults,
    SimulationResult,
    _process_run_unit,
    _simulate,
)
from repro.store.content import ContentStore

#: Execution modes accepted by :class:`ShardCoordinator`.
MODES = ("thread", "process")


def _job_payload(job: SimulationJob) -> dict:
    """Default payload converter: the job's JSON-serialisable dict form."""
    return job.to_dict()


@dataclass(frozen=True)
class WorkUnit:
    """A contiguous shard of a batch: jobs ``start .. start+len(jobs)-1``."""

    index: int
    start: int
    jobs: tuple[SimulationJob, ...]

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass
class CoordinatorStats:
    """What the coordinator did to one batch (diagnostics, not results)."""

    units: int = 0
    steals: int = 0
    retries: int = 0
    failed_units: int = 0
    per_worker_units: list[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "units": self.units,
            "steals": self.steals,
            "retries": self.retries,
            "failed_units": self.failed_units,
            "per_worker_units": list(self.per_worker_units),
        }


def split_units(
    jobs: Sequence[SimulationJob], workers: int, unit_size: int | None = None
) -> list[WorkUnit]:
    """Split ``jobs`` into contiguous work units.

    The default unit size targets ~4 units per worker: small enough that
    stealing can rebalance skewed costs, large enough that per-unit
    dispatch overhead stays negligible.
    """
    if unit_size is None:
        unit_size = max(1, len(jobs) // max(1, workers * 4))
    if unit_size < 1:
        raise WorkloadError(f"unit size must be positive, got {unit_size}")
    units = []
    for start in range(0, len(jobs), unit_size):
        units.append(
            WorkUnit(
                index=len(units),
                start=start,
                jobs=tuple(jobs[start : start + unit_size]),
            )
        )
    return units


class ShardCoordinator:
    """Dispatch work units to workers with stealing and bounded retry.

    Parameters
    ----------
    workers:
        Concurrent workers (coordinator threads; in ``"process"`` mode each
        one drives a slot of a shared process pool).
    mode:
        ``"thread"`` or ``"process"`` (see module docstring).
    unit_size:
        Jobs per shard; defaults to ``len(jobs) // (workers * 4)``.
    max_retries:
        How many times a failed *shard* is re-executed before its jobs are
        recorded as errors.
    cache:
        Activation cache shared by ``"thread"``-mode units (optional).
    kernel_caches:
        Kernel warm-start caches shared by ``"thread"``-mode units.
    cache_size:
        Activation-cache size handed to worker processes.
    store:
        The shared :class:`~repro.store.ContentStore`; process workers
        reopen it via :meth:`~repro.store.ContentStore.process_token`.
    thread_runner:
        Optional ``job -> result`` callable executed per job in ``"thread"``
        mode; defaults to the simulation runner.  Together with
        ``process_entry``/``payload``/``failure`` this turns the coordinator
        into a generic shard executor (the DSE sweep runs exploration tasks
        through it) while the default wiring stays the simulation batch.
    process_entry:
        Optional top-level (picklable) ``(payloads, cache_size, token) ->
        results`` function executed per unit in ``"process"`` mode; defaults
        to the simulation unit entry.
    payload:
        Optional ``job -> picklable payload`` converter used before shipping
        a unit to a worker process; defaults to ``job.to_dict()``.
    failure:
        Optional ``(job, error_message) -> result`` converter recording a
        shard that exhausted its retries; defaults to
        :meth:`SimulationResult.from_error`.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        mode: str = "process",
        unit_size: int | None = None,
        max_retries: int = 2,
        cache: ActivationCache | None = None,
        kernel_caches: KernelCaches | None = None,
        cache_size: int = 4096,
        store: ContentStore | None = None,
        thread_runner: Callable | None = None,
        process_entry: Callable | None = None,
        payload: Callable | None = None,
        failure: Callable | None = None,
    ):
        if workers < 1:
            raise WorkloadError(f"worker count must be positive, got {workers}")
        if mode not in MODES:
            raise WorkloadError(f"unknown cluster mode {mode!r}; choose from {MODES}")
        if max_retries < 0:
            raise WorkloadError("max_retries must be >= 0")
        self.workers = workers
        self.mode = mode
        self.unit_size = unit_size
        self.max_retries = max_retries
        self.cache = cache
        self.kernel_caches = kernel_caches
        self.cache_size = cache_size
        self.store = store
        self._thread_runner = thread_runner
        self._process_entry = process_entry
        self._payload = payload
        self._failure = failure
        self.stats = CoordinatorStats()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: BatchSpec | Sequence[SimulationJob],
        progress: Callable[[int, SimulationResult], None] | None = None,
    ) -> BatchResults:
        """Shard, execute and deterministically merge one batch."""
        jobs = list(batch.jobs if isinstance(batch, BatchSpec) else batch)
        return BatchResults(self.run(jobs, progress))

    def run(
        self,
        jobs: Sequence[SimulationJob],
        progress: Callable[[int, SimulationResult], None] | None = None,
    ) -> list[SimulationResult]:
        """Execute ``jobs`` and return results in absolute job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        units = split_units(jobs, self.workers, self.unit_size)
        self.stats = CoordinatorStats(
            units=len(units), per_worker_units=[0] * self.workers
        )
        results: list[SimulationResult | None] = [None] * len(jobs)
        results_lock = threading.Lock()

        # Round-robin initial placement; worker i owns deque i.
        deques: list[deque[WorkUnit]] = [deque() for _ in range(self.workers)]
        for unit in units:
            deques[unit.index % self.workers].append(unit)
        queue_lock = threading.Lock()

        def take(worker: int) -> WorkUnit | None:
            with queue_lock:
                own = deques[worker]
                if own:
                    return own.popleft()
                # Steal from the tail of the longest rival deque — the tail
                # shards are the ones their owner would reach last, so the
                # steal does not fight the owner for its next unit.
                rival = max(
                    (d for d in deques if d), key=len, default=None
                )
                if rival is None:
                    return None
                self.stats.steals += 1
                return rival.pop()

        def worker_loop(worker: int) -> None:
            while True:
                unit = take(worker)
                if unit is None:
                    return
                unit_results = self._run_unit_with_retry(unit)
                self.stats.per_worker_units[worker] += 1
                with results_lock:
                    for offset, result in enumerate(unit_results):
                        results[unit.start + offset] = result
                    if progress is not None:
                        for offset, result in enumerate(unit_results):
                            progress(unit.start + offset, result)

        threads = [
            threading.Thread(
                target=worker_loop, args=(index,), name=f"shard-worker-{index}"
            )
            for index in range(self.workers)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            self._shutdown_pool()
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover — the retry path always fills results
            raise WorkloadError(f"shard coordinator lost results for jobs {missing}")
        return results

    # ------------------------------------------------------------------ #
    # Unit execution
    # ------------------------------------------------------------------ #
    def _run_unit_with_retry(self, unit: WorkUnit) -> list[SimulationResult]:
        """Execute one shard, retrying on worker death, then failing it."""
        error: str = "unknown shard failure"
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.stats.retries += 1
            try:
                return self._execute_unit(unit)
            except BrokenProcessPool as exc:
                # The whole pool is gone — every concurrent shard sees this;
                # each retries on a fresh pool.
                self._invalidate_pool()
                error = f"BrokenProcessPool: {exc}"
            except Exception as exc:  # noqa: BLE001 — shard-level isolation
                error = f"{type(exc).__name__}: {exc}"
        self.stats.failed_units += 1
        if self._failure is not None:
            return [self._failure(job, error) for job in unit.jobs]
        return [SimulationResult.from_error(job, error) for job in unit.jobs]

    def _execute_unit(self, unit: WorkUnit) -> list[SimulationResult]:
        if self.mode == "thread":
            if self._thread_runner is not None:
                return [self._thread_runner(job) for job in unit.jobs]
            return [
                _simulate(job, self.cache, self.kernel_caches) for job in unit.jobs
            ]
        pool, generation = self._acquire_pool()
        token = self.store.process_token() if self.store is not None else None
        entry = self._process_entry if self._process_entry is not None else _process_run_unit
        to_payload = self._payload if self._payload is not None else _job_payload
        future = pool.submit(
            entry,
            [to_payload(job) for job in unit.jobs],
            self.cache_size,
            token,
        )
        try:
            return future.result()
        except BrokenProcessPool:
            self._invalidate_pool(generation)
            raise

    # ------------------------------------------------------------------ #
    # Shared process pool (recreated when broken)
    # ------------------------------------------------------------------ #
    def _acquire_pool(self) -> tuple[ProcessPoolExecutor, int]:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                self._pool_generation += 1
            return self._pool, self._pool_generation

    def _invalidate_pool(self, generation: int | None = None) -> None:
        with self._pool_lock:
            if generation is not None and generation != self._pool_generation:
                return  # someone else already replaced the broken pool
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(workers={self.workers}, mode={self.mode!r}, "
            f"max_retries={self.max_retries})"
        )


__all__ = [
    "MODES",
    "CoordinatorStats",
    "ShardCoordinator",
    "WorkUnit",
    "split_units",
]
