"""repro.cluster — sharded batch execution over the simulation service.

A :class:`ShardCoordinator` splits a :class:`~repro.service.jobs.BatchSpec`
into contiguous work units, dispatches them to an in-process worker pool
with work stealing for skewed job costs, retries dead shards a bounded
number of times, and merges results deterministically by absolute job
index — so batch fingerprints are independent of worker count, steal order
and retry history.  Combined with a shared :mod:`repro.store`
content-addressed store, shards warm each other across processes and runs.
"""

from repro.cluster.coordinator import (
    MODES,
    CoordinatorStats,
    ShardCoordinator,
    WorkUnit,
    split_units,
)

__all__ = [
    "MODES",
    "CoordinatorStats",
    "ShardCoordinator",
    "WorkUnit",
    "split_units",
]
