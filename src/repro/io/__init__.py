"""Serialization of library objects to and from JSON.

The runtime manager of the paper receives its design-time data (platform
description, per-application operating-point tables) as files produced by the
DSE flow.  This package provides the corresponding plain-JSON round-trip for
platforms, configuration tables, jobs, test cases and request traces, plus
small helpers for saving/loading whole experiment setups.
"""

from repro.io.serialization import (
    batch_results_to_dict,
    batch_spec_from_dict,
    batch_spec_to_dict,
    config_table_from_dict,
    config_table_to_dict,
    exploration_result_from_dict,
    exploration_result_to_dict,
    job_from_dict,
    job_to_dict,
    load_json,
    platform_from_dict,
    platform_to_dict,
    request_trace_from_dict,
    request_trace_to_dict,
    save_json,
    schedule_to_dict,
    simulation_job_from_dict,
    simulation_job_to_dict,
    sweep_result_from_dict,
    sweep_result_to_dict,
    tables_from_dict,
    tables_to_dict,
    test_case_from_dict,
    test_case_to_dict,
)

__all__ = [
    "batch_spec_to_dict",
    "batch_spec_from_dict",
    "batch_results_to_dict",
    "simulation_job_to_dict",
    "simulation_job_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "config_table_to_dict",
    "config_table_from_dict",
    "tables_to_dict",
    "tables_from_dict",
    "exploration_result_to_dict",
    "exploration_result_from_dict",
    "sweep_result_to_dict",
    "sweep_result_from_dict",
    "job_to_dict",
    "job_from_dict",
    "test_case_to_dict",
    "test_case_from_dict",
    "request_trace_to_dict",
    "request_trace_from_dict",
    "schedule_to_dict",
    "save_json",
    "load_json",
]
