"""JSON (de)serialisation of library objects.

Every ``*_to_dict`` function produces plain JSON-compatible dictionaries (only
``dict``, ``list``, ``str``, ``int``, ``float``, ``bool``); every
``*_from_dict`` function validates its input and raises
:class:`~repro.exceptions.SerializationError` with a helpful message on
malformed data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.config import ConfigTable, OperatingPoint
from repro.core.request import Job
from repro.core.segment import Schedule
from repro.energy.opp import OPP, OPPLadder
from repro.exceptions import EnergyError, SerializationError
from repro.platforms.platform import Platform
from repro.platforms.power import PowerModel
from repro.platforms.processor import ProcessorType
from repro.platforms.resources import ResourceVector
from repro.runtime.trace import RequestEvent, RequestTrace
from repro.workload.testgen import DeadlineLevel, TestCase


def _require(data: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in data:
        raise SerializationError(f"{context}: missing required field {key!r}")
    return data[key]


# ---------------------------------------------------------------------- #
# Platforms
# ---------------------------------------------------------------------- #
def platform_to_dict(platform: Platform) -> dict:
    """Serialise a platform (name, processor types, core counts).

    OPP ladders round-trip too (as ``opps`` lists per processor type, only
    emitted when present), so a DVFS-aware inline platform behaves the same
    after crossing a process boundary or a save/load cycle as it did live.
    """
    types = []
    for ptype in platform.processor_types:
        entry = {
            "name": ptype.name,
            "frequency_hz": ptype.frequency_hz,
            "performance_factor": ptype.performance_factor,
            "static_watts": ptype.power.static_watts,
            "dynamic_watts": ptype.power.dynamic_watts,
        }
        if ptype.opps is not None:
            entry["opps"] = [
                {
                    "frequency_hz": opp.frequency_hz,
                    "speed": opp.speed,
                    "static_watts": opp.power.static_watts,
                    "dynamic_watts": opp.power.dynamic_watts,
                }
                for opp in ptype.opps
            ]
        types.append(entry)
    return {
        "name": platform.name,
        "processor_types": types,
        "core_counts": list(platform.core_counts),
    }


def platform_from_dict(data: Mapping[str, Any]) -> Platform:
    """Reconstruct a platform from :func:`platform_to_dict` output."""
    types = []
    for entry in _require(data, "processor_types", "platform"):
        ladder = None
        if entry.get("opps"):
            try:
                ladder = OPPLadder(
                    OPP(
                        frequency_hz=float(_require(point, "frequency_hz", "OPP")),
                        speed=float(_require(point, "speed", "OPP")),
                        power=PowerModel(
                            static_watts=float(_require(point, "static_watts", "OPP")),
                            dynamic_watts=float(_require(point, "dynamic_watts", "OPP")),
                        ),
                    )
                    for point in entry["opps"]
                )
            except EnergyError as error:
                raise SerializationError(
                    f"processor type {entry.get('name')!r}: invalid OPP ladder: {error}"
                ) from None
        types.append(
            ProcessorType(
                name=_require(entry, "name", "processor type"),
                frequency_hz=float(_require(entry, "frequency_hz", "processor type")),
                performance_factor=float(
                    _require(entry, "performance_factor", "processor type")
                ),
                power=PowerModel(
                    static_watts=float(_require(entry, "static_watts", "processor type")),
                    dynamic_watts=float(
                        _require(entry, "dynamic_watts", "processor type")
                    ),
                ),
                opps=ladder,
            )
        )
    return Platform(
        name=_require(data, "name", "platform"),
        processor_types=types,
        core_counts=[int(c) for c in _require(data, "core_counts", "platform")],
    )


# ---------------------------------------------------------------------- #
# Configuration tables
# ---------------------------------------------------------------------- #
def config_table_to_dict(table: ConfigTable) -> dict:
    """Serialise one application's operating points.

    The ``frequency_scale`` column is only emitted for non-nominal points,
    so pinned-frequency tables serialise exactly as the seed did.
    """
    points = []
    for point in table:
        entry = {
            "resources": list(point.resources),
            "execution_time": point.execution_time,
            "energy": point.energy,
        }
        if point.frequency_scale != 1.0:
            entry["frequency_scale"] = point.frequency_scale
        points.append(entry)
    return {"application": table.application, "points": points}


def config_table_from_dict(data: Mapping[str, Any]) -> ConfigTable:
    """Reconstruct a configuration table."""
    points = []
    for entry in _require(data, "points", "config table"):
        points.append(
            OperatingPoint(
                resources=ResourceVector(
                    int(c) for c in _require(entry, "resources", "operating point")
                ),
                execution_time=float(_require(entry, "execution_time", "operating point")),
                energy=float(_require(entry, "energy", "operating point")),
                frequency_scale=float(entry.get("frequency_scale", 1.0)),
            )
        )
    return ConfigTable(_require(data, "application", "config table"), points)


def tables_to_dict(tables: Mapping[str, ConfigTable]) -> dict:
    """Serialise a full application-name → table mapping."""
    return {name: config_table_to_dict(table) for name, table in sorted(tables.items())}


def tables_from_dict(data: Mapping[str, Any]) -> dict[str, ConfigTable]:
    """Reconstruct a table mapping, checking key/application consistency."""
    tables = {}
    for name, entry in data.items():
        table = config_table_from_dict(entry)
        if table.application != name:
            raise SerializationError(
                f"table stored under key {name!r} declares application "
                f"{table.application!r}"
            )
        tables[name] = table
    return tables


# ---------------------------------------------------------------------- #
# Jobs and test cases
# ---------------------------------------------------------------------- #
def job_to_dict(job: Job) -> dict:
    """Serialise one job."""
    return {
        "name": job.name,
        "application": job.application,
        "arrival": job.arrival,
        "deadline": job.deadline,
        "remaining_ratio": job.remaining_ratio,
    }


def job_from_dict(data: Mapping[str, Any]) -> Job:
    """Reconstruct one job."""
    return Job(
        name=_require(data, "name", "job"),
        application=_require(data, "application", "job"),
        arrival=float(_require(data, "arrival", "job")),
        deadline=float(_require(data, "deadline", "job")),
        remaining_ratio=float(data.get("remaining_ratio", 1.0)),
    )


def test_case_to_dict(case: TestCase) -> dict:
    """Serialise one generated test case."""
    return {
        "name": case.name,
        "deadline_level": case.deadline_level.value,
        "single_application": case.single_application,
        "jobs": [job_to_dict(job) for job in case.jobs],
    }


def test_case_from_dict(data: Mapping[str, Any]) -> TestCase:
    """Reconstruct one test case."""
    level_value = _require(data, "deadline_level", "test case")
    try:
        level = DeadlineLevel(level_value)
    except ValueError:
        raise SerializationError(
            f"test case: unknown deadline level {level_value!r}"
        ) from None
    return TestCase(
        name=_require(data, "name", "test case"),
        jobs=tuple(job_from_dict(j) for j in _require(data, "jobs", "test case")),
        deadline_level=level,
        single_application=bool(data.get("single_application", False)),
    )


# ---------------------------------------------------------------------- #
# Request traces and schedules
# ---------------------------------------------------------------------- #
def request_trace_to_dict(trace: RequestTrace) -> dict:
    """Serialise a request trace."""
    return {
        "events": [
            {
                "time": event.time,
                "application": event.application,
                "relative_deadline": event.relative_deadline,
                "name": event.name,
            }
            for event in trace
        ]
    }


def request_trace_from_dict(data: Mapping[str, Any]) -> RequestTrace:
    """Reconstruct a request trace."""
    events = []
    for entry in _require(data, "events", "request trace"):
        events.append(
            RequestEvent(
                time=float(_require(entry, "time", "request event")),
                application=_require(entry, "application", "request event"),
                relative_deadline=float(
                    _require(entry, "relative_deadline", "request event")
                ),
                name=_require(entry, "name", "request event"),
            )
        )
    return RequestTrace(events)


def schedule_to_dict(schedule: Schedule) -> dict:
    """Serialise a schedule (export only; schedules are recomputed, not loaded)."""
    return {
        "segments": [
            {
                "start": segment.start,
                "end": segment.end,
                "mappings": [
                    {"job": m.job_name, "application": m.application, "config": m.config_index}
                    for m in segment
                ],
            }
            for segment in schedule
        ]
    }


# ---------------------------------------------------------------------- #
# Batch-simulation specs and results (repro.service)
# ---------------------------------------------------------------------- #
# The service package imports repro.io for its primitives, so these wrappers
# resolve the service types lazily to keep the import graph acyclic.
def simulation_job_to_dict(job) -> dict:
    """Serialise one :class:`~repro.service.jobs.SimulationJob`."""
    return job.to_dict()


def simulation_job_from_dict(data: Mapping[str, Any]):
    """Reconstruct one :class:`~repro.service.jobs.SimulationJob`."""
    from repro.service.jobs import SimulationJob

    return SimulationJob.from_dict(data)


def batch_spec_to_dict(spec) -> dict:
    """Serialise a :class:`~repro.service.jobs.BatchSpec`."""
    return spec.to_dict()


def batch_spec_from_dict(data: Mapping[str, Any]):
    """Reconstruct a :class:`~repro.service.jobs.BatchSpec`."""
    from repro.service.jobs import BatchSpec

    return BatchSpec.from_dict(data)


def batch_results_to_dict(results) -> dict:
    """Serialise :class:`~repro.service.pool.BatchResults` (export only).

    Results are summaries of simulations and are recomputed, not loaded.
    """
    return results.to_dict()


# ---------------------------------------------------------------------- #
# Design-space exploration
# ---------------------------------------------------------------------- #
def exploration_result_to_dict(result) -> dict:
    """Serialise one :class:`~repro.dse.explorer.ExplorationResult`.

    The process-to-core assignment is stored by core name (``"A15.2"``), so
    the document is platform-independent JSON; :func:`exploration_result_from_dict`
    needs the graph and platform back to rebuild the live mapping.
    """
    point = result.operating_point
    entry = {
        "allocation": list(result.allocation),
        "assignment": {
            process: core.name for process, core in result.mapping.assignment.items()
        },
        "simulation": {
            "execution_time": result.simulation.execution_time,
            "energy": result.simulation.energy,
            "core_busy_time": dict(result.simulation.core_busy_time),
            "communication_bytes": result.simulation.communication_bytes,
        },
        "operating_point": {
            "resources": list(point.resources),
            "execution_time": point.execution_time,
            "energy": point.energy,
        },
    }
    if point.frequency_scale != 1.0:
        entry["operating_point"]["frequency_scale"] = point.frequency_scale
    return entry


def exploration_result_from_dict(data: Mapping[str, Any], graph, platform):
    """Reconstruct an :class:`~repro.dse.explorer.ExplorationResult`.

    ``graph`` and ``platform`` provide the live context the JSON document
    references by name (an OPP-swept result re-pins the platform itself via
    the stored ``frequency_scale``, exactly as the explorer did).
    """
    from repro.dse.explorer import ExplorationResult
    from repro.energy.opp import SCALE_EPSILON, scaled_platform
    from repro.mapping.mapping import Core, ProcessMapping
    from repro.mapping.simulate import SimulationResult

    point_data = _require(data, "operating_point", "exploration result")
    point = OperatingPoint(
        resources=ResourceVector(
            int(c) for c in _require(point_data, "resources", "operating point")
        ),
        execution_time=float(_require(point_data, "execution_time", "operating point")),
        energy=float(_require(point_data, "energy", "operating point")),
        frequency_scale=float(point_data.get("frequency_scale", 1.0)),
    )
    if abs(point.frequency_scale - 1.0) > SCALE_EPSILON:
        platform = scaled_platform(platform, point.frequency_scale)
    assignment = {}
    for process, core_name in _require(data, "assignment", "exploration result").items():
        type_name, _, index = str(core_name).rpartition(".")
        if not type_name or not index.isdigit():
            raise SerializationError(
                f"exploration result: malformed core name {core_name!r}"
            )
        assignment[process] = Core(platform.processor_type(type_name), int(index))
    simulation_data = _require(data, "simulation", "exploration result")
    simulation = SimulationResult(
        execution_time=float(
            _require(simulation_data, "execution_time", "simulation result")
        ),
        energy=float(_require(simulation_data, "energy", "simulation result")),
        core_busy_time={
            str(core): float(busy)
            for core, busy in _require(
                simulation_data, "core_busy_time", "simulation result"
            ).items()
        },
        communication_bytes=float(
            _require(simulation_data, "communication_bytes", "simulation result")
        ),
    )
    return ExplorationResult(
        allocation=ResourceVector(
            int(c) for c in _require(data, "allocation", "exploration result")
        ),
        mapping=ProcessMapping(graph, platform, assignment),
        simulation=simulation,
        operating_point=point,
    )


def sweep_result_to_dict(result) -> dict:
    """Serialise a :class:`~repro.dse.sweep.SweepResult` (archive/merge form)."""
    return result.to_dict()


def sweep_result_from_dict(data: Mapping[str, Any]):
    """Reconstruct a :class:`~repro.dse.sweep.SweepResult`.

    The frontier fingerprint is recomputed from the archived tables and
    checked against the stored digest, so a truncated or hand-edited archive
    fails loudly instead of silently merging wrong frontiers.
    """
    from repro.dse.sweep import SweepResult
    from repro.exceptions import WorkloadError

    try:
        return SweepResult.from_dict(data)
    except (KeyError, TypeError, WorkloadError) as error:
        raise SerializationError(f"invalid sweep result: {error}") from None


# ---------------------------------------------------------------------- #
# File helpers
# ---------------------------------------------------------------------- #
def save_json(data: Mapping[str, Any], path: str | Path) -> None:
    """Write a JSON document with stable formatting."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str | Path) -> Any:
    """Read a JSON document, converting file errors to SerializationError."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise SerializationError(f"file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON in {path}: {error}") from None
