"""The persistent content-addressed store (:class:`ContentStore`).

Every cache in this library is content-keyed: solve memos embed table
fingerprints and exact ratios, exmem column tables are keyed by table
fingerprints, interned :class:`~repro.optable.table.OpTable` objects *are*
their fingerprint, and the activation cache keys canonicalised problem
signatures.  A hit therefore describes the same mathematical object
wherever it comes from — another thread, another process, or a previous
run — which is exactly the property a shared persistent store needs.

:class:`ContentStore` layers that on a byte-level
:class:`~repro.store.backend.CacheBackend`:

* **Versioned namespaces** — entries live under ``f"{kind}:{version}"``
  with ``version`` defaulting to :data:`repro.version.__version__`, so a
  release that changes any pickled layout simply never sees the old rows
  (and :meth:`gc` reclaims them).
* **Write-through with a local LRU front** — reads hit a small in-process
  dict first; backend reads and writes happen outside any lock so SQLite
  latency never serialises worker threads.
* **Misses, never errors** — a corrupted, truncated or unpicklable entry
  (or a failing backend) degrades to a miss: the caller recomputes, the
  bad row is deleted best-effort, and a ``corrupt``/``error`` counter
  records the event.

The module also owns the ``REPRO_STORE`` escape hatch (mirroring
``REPRO_KERNEL``): ``REPRO_STORE=0`` disables every store binding no
matter what the code configures, restoring the seed's process-local
behaviour bit-identically; ``REPRO_STORE=/path/to.db`` opts the whole
process into a shared store without touching call sites.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict

from repro.obs import tracer as obs
from repro.store.backend import CacheBackend, MemoryBackend, SQLiteBackend
from repro.version import __version__

#: Counter names tracked per cache kind (also surfaced through
#: ``obs.count("store.<kind>.<name>")`` and the gateway's ``repro_store_*``
#: Prometheus series).
STAT_NAMES = (
    "hits",
    "local_hits",
    "misses",
    "puts",
    "corrupt",
    "errors",
    "bytes_read",
    "bytes_written",
    "evictions",
)


def encode_key(key: object) -> str:
    """Digest an arbitrary cache key into a stable hex string.

    Cache keys throughout the library are tuples of strings, ints and
    floats — ``repr`` of those is identical across processes and Python
    builds (floats render as their shortest round-trip form), so hashing
    the repr yields the same address everywhere the same problem appears.
    """
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=20).hexdigest()


class _KindState:
    """Per-kind mutable state: the local LRU front and the counters."""

    __slots__ = ("front", "counters")

    def __init__(self) -> None:
        self.front: OrderedDict = OrderedDict()
        self.counters = dict.fromkeys(STAT_NAMES, 0)


class ContentStore:
    """A shared, persistent map of content-addressed cache entries.

    One store serves many cache *kinds* (``solve``, ``exmem``, ``optable``,
    ``activation``); each kind gets its own versioned namespace, its own
    bounded local LRU front and its own counters.  All methods are
    thread-safe, and when the backend is SQLite the same file may be open
    from many processes at once (see :class:`~repro.store.backend.SQLiteBackend`).
    """

    def __init__(
        self,
        backend: CacheBackend,
        *,
        local_entries: int = 1024,
        version: str = __version__,
    ):
        if local_entries < 0:
            raise ValueError("local_entries must be >= 0")
        self._backend = backend
        self._local_entries = local_entries
        self._version = version
        self._kinds: dict[str, _KindState] = {}
        self._lock = threading.Lock()

    # -- construction helpers -------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike, **kwargs) -> "ContentStore":
        """A store persisted in the SQLite file at ``path``."""
        return cls(SQLiteBackend(path), **kwargs)

    @classmethod
    def in_memory(cls, **kwargs) -> "ContentStore":
        """A process-local store (tests, thread-shared warm caches)."""
        return cls(MemoryBackend(), **kwargs)

    # -- identity -------------------------------------------------------

    @property
    def backend(self) -> CacheBackend:
        return self._backend

    @property
    def version(self) -> str:
        return self._version

    @property
    def path(self) -> str | None:
        """The backing file, or ``None`` for in-memory stores."""
        return getattr(self._backend, "path", None)

    def process_token(self) -> str | None:
        """A value that reopens this store in a forked/spawned worker.

        Process-pool workers cannot share the parent's Python object, but a
        SQLite store is fully described by its path.  In-memory stores have
        no cross-process identity and return ``None`` (workers then run
        store-less, which is still correct — just cold).
        """
        return self.path

    def namespace(self, kind: str) -> str:
        return f"{kind}:{self._version}"

    # -- internals ------------------------------------------------------

    def _state(self, kind: str) -> _KindState:
        with self._lock:
            state = self._kinds.get(kind)
            if state is None:
                state = self._kinds[kind] = _KindState()
            return state

    def _bump(self, state: _KindState, kind: str, name: str, amount: int = 1) -> None:
        # Counter writes race benignly under the GIL only for the local
        # ints; keep them under the lock, but keep obs outside it.
        with self._lock:
            state.counters[name] += amount
        obs.count(f"store.{kind}.{name}", amount)

    # -- the cache surface ----------------------------------------------

    def get(self, kind: str, key: object):
        """The stored value for ``(kind, key)``, or ``None`` on a miss.

        Corrupted entries and backend failures are misses by design — a
        warm store can never make a run fail, only make it faster.
        """
        state = self._state(kind)
        digest = encode_key(key)
        with self._lock:
            if digest in state.front:
                state.front.move_to_end(digest)
                value = state.front[digest]
                state.counters["hits"] += 1
                state.counters["local_hits"] += 1
                local_hit = True
            else:
                local_hit = False
        if local_hit:
            obs.count(f"store.{kind}.hit")
            return value

        try:
            payload = self._backend.get(self.namespace(kind), digest)
        except Exception:
            self._bump(state, kind, "errors")
            self._bump(state, kind, "misses")
            obs.count(f"store.{kind}.miss")
            return None
        if payload is None:
            self._bump(state, kind, "misses")
            obs.count(f"store.{kind}.miss")
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            # Truncated write, version skew inside a namespace, bit rot:
            # drop the row so the next run does not pay the decode again.
            self._bump(state, kind, "corrupt")
            self._bump(state, kind, "misses")
            obs.count(f"store.{kind}.miss")
            try:
                self._backend.delete(self.namespace(kind), digest)
            except Exception:
                pass
            return None
        self._bump(state, kind, "bytes_read", len(payload))
        self._bump(state, kind, "hits")
        obs.count(f"store.{kind}.hit")
        self._promote(state, digest, value)
        return value

    def put(self, kind: str, key: object, value: object) -> None:
        """Write-through: the local front and the backend both see ``value``."""
        state = self._state(kind)
        digest = encode_key(key)
        self._promote(state, digest, value)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            self._backend.put(self.namespace(kind), digest, payload)
        except Exception:
            self._bump(state, kind, "errors")
            return
        self._bump(state, kind, "puts")
        self._bump(state, kind, "bytes_written", len(payload))

    def _promote(self, state: _KindState, digest: str, value: object) -> None:
        if self._local_entries == 0:
            return
        with self._lock:
            state.front[digest] = value
            state.front.move_to_end(digest)
            while len(state.front) > self._local_entries:
                state.front.popitem(last=False)
                state.counters["evictions"] += 1

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        """Counters per kind plus backend entry/byte totals per namespace."""
        with self._lock:
            kinds = {
                kind: dict(state.counters) for kind, state in self._kinds.items()
            }
            for kind, state in self._kinds.items():
                kinds[kind]["local_entries"] = len(state.front)
        namespaces = {}
        try:
            for namespace in self._backend.namespaces():
                entries, size = self._backend.count(namespace)
                namespaces[namespace] = {"entries": entries, "bytes": size}
        except Exception:
            pass
        return {
            "version": self._version,
            "path": self.path,
            "kinds": kinds,
            "namespaces": namespaces,
        }

    def counters(self) -> dict[str, dict[str, int]]:
        """Just the per-kind counters (the `/metrics` surface)."""
        with self._lock:
            return {kind: dict(state.counters) for kind, state in self._kinds.items()}

    def gc(self, max_entries_per_kind: int | None = None) -> dict:
        """Reclaim stale data: other-version namespaces, then oversize kinds.

        Entries written by a different ``repro.version`` can never be read
        again (the namespace embeds the version), so they are dropped
        wholesale.  When ``max_entries_per_kind`` is given, each surviving
        namespace is trimmed oldest-first to that bound.
        """
        dropped = 0
        trimmed = 0
        suffix = f":{self._version}"
        for namespace in self._backend.namespaces():
            if not namespace.endswith(suffix):
                dropped += self._backend.drop_namespace(namespace)
            elif max_entries_per_kind is not None:
                trimmed += self._backend.trim(namespace, max_entries_per_kind)
        return {"dropped": dropped, "trimmed": trimmed}

    def clear(self) -> None:
        """Drop every entry — backend rows, local fronts and counters."""
        self._backend.clear()
        with self._lock:
            self._kinds.clear()

    def close(self) -> None:
        self._backend.close()

    def __repr__(self) -> str:
        return f"ContentStore(backend={self._backend!r}, version={self._version!r})"


# -- the REPRO_STORE escape hatch ---------------------------------------

_DISABLED_VALUES = ("0", "false", "no", "off")


def store_enabled() -> bool:
    """Whether store bindings are allowed at all (``REPRO_STORE`` ≠ 0)."""
    env = os.environ.get("REPRO_STORE")
    return env is None or env.strip().lower() not in _DISABLED_VALUES


def resolve_store(store: "ContentStore | str | os.PathLike | None" = None):
    """Resolve the effective store for a service/session/gateway.

    Precedence: ``REPRO_STORE=0`` (or ``false``/``no``/``off``) force-disables
    every binding; otherwise an explicit :class:`ContentStore` or path wins;
    otherwise a path set via ``REPRO_STORE`` opts the process in; otherwise
    no store is used and behaviour matches the seed bit-identically.
    """
    env = os.environ.get("REPRO_STORE")
    if env is not None and env.strip().lower() in _DISABLED_VALUES:
        return None
    if isinstance(store, ContentStore):
        return store
    if store is not None:
        return ContentStore.open(store)
    if env is not None and env.strip():
        return ContentStore.open(env.strip())
    return None


__all__ = [
    "STAT_NAMES",
    "ContentStore",
    "encode_key",
    "resolve_store",
    "store_enabled",
]
