"""repro.store — persistent content-addressed cache store.

Public surface:

* :class:`ContentStore` with :meth:`ContentStore.open` /
  :meth:`ContentStore.in_memory`, plus ``stats()``/``gc()``/``clear()``
  maintenance;
* the :class:`CacheBackend` protocol with the :class:`SQLiteBackend` and
  :class:`MemoryBackend` implementations;
* store-backed drop-ins for the in-process caches
  (:class:`StoreBackedKernelCaches`, :class:`StoreBackedSolveCache`,
  :class:`StoreBackedActivationCache`);
* :func:`resolve_store`, which applies the ``REPRO_STORE`` escape hatch
  (``REPRO_STORE=0`` force-disables every binding, ``REPRO_STORE=path``
  opts the whole process into a shared store).
"""

from repro.store.backend import CacheBackend, MemoryBackend, SQLiteBackend
from repro.store.bindings import (
    StoreBackedActivationCache,
    StoreBackedKernelCaches,
    StoreBackedSolveCache,
    store_backed_activation_cache,
    store_backed_caches,
)
from repro.store.content import (
    STAT_NAMES,
    ContentStore,
    encode_key,
    resolve_store,
    store_enabled,
)

__all__ = [
    "STAT_NAMES",
    "CacheBackend",
    "ContentStore",
    "MemoryBackend",
    "SQLiteBackend",
    "StoreBackedActivationCache",
    "StoreBackedKernelCaches",
    "StoreBackedSolveCache",
    "encode_key",
    "resolve_store",
    "store_backed_activation_cache",
    "store_backed_caches",
    "store_enabled",
]
