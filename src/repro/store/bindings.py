"""Store-backed variants of the library's cache classes.

Each binding keeps the original in-process cache as a hot local front and
falls back to a shared :class:`~repro.store.content.ContentStore` on a
local miss, promoting store hits into the local LRU and writing every new
entry through.  The subclasses preserve the parent classes' observable
surface (``hits``/``misses`` counters, ``info()``), so everything that
already consumes a :class:`~repro.optable.view.SolveCache`, an
:class:`~repro.service.cache.ActivationCache` or a
:class:`~repro.kernel.caches.KernelCaches` — the LR scheduler's cache
adoption, the service pool, the gateway's per-tenant state — works
unchanged when handed the store-backed flavour.

Store kinds used here: ``solve`` (LR segment relaxations), ``exmem``
(EX-MEM candidate columns), ``activation`` (canonical scheduling results).
OpTable interning binds separately via
:func:`repro.optable.table.bind_intern_store` (kind ``optable``).
"""

from __future__ import annotations

from repro.kernel.caches import KernelCaches
from repro.obs import tracer as obs
from repro.optable.view import SolveCache
from repro.service.cache import ActivationCache
from repro.store.content import ContentStore


class StoreBackedSolveCache(SolveCache):
    """A :class:`SolveCache` with a shared persistent second level.

    The cached values are :class:`~repro.knapsack.lagrangian.LagrangianResult`
    objects; their keys embed table fingerprints, capacities and exact
    ratios, so a store hit replays the identical deterministic solve no
    matter which process or run produced it.
    """

    KIND = "solve"

    def __init__(self, store: ContentStore, max_entries: int = 4096):
        super().__init__(max_entries)
        self._store = store

    @property
    def store(self) -> ContentStore:
        return self._store

    def get(self, key):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is not None:
            obs.count("cache.solve.hit")
            return value
        value = self._store.get(self.KIND, key)
        if value is None:
            with self._lock:
                self.misses += 1
            obs.count("cache.solve.miss")
            return None
        with self._lock:
            self.hits += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
        obs.count("cache.solve.hit")
        return value

    def put(self, key, value) -> None:
        super().put(key, value)
        self._store.put(self.KIND, key, value)


class StoreBackedActivationCache(ActivationCache):
    """An :class:`ActivationCache` with a shared persistent second level.

    Safe to share across runs because :class:`CachingScheduler` rehydrates
    the canonical result on hits *and* misses — a warm store changes where
    an entry comes from, never what the caller computes from it.
    """

    KIND = "activation"

    def __init__(self, store: ContentStore, maxsize: int = 4096):
        super().__init__(maxsize)
        self._store = store

    @property
    def store(self) -> ContentStore:
        return self._store

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if entry is not None:
            obs.count("cache.activation.hit")
            return entry
        entry = self._store.get(self.KIND, key)
        if entry is None:
            with self._lock:
                self._misses += 1
            obs.count("cache.activation.miss")
            return None
        with self._lock:
            self._hits += 1
            if self._maxsize > 0:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
        obs.count("cache.activation.hit")
        return entry

    def put(self, key, result) -> None:
        super().put(key, result)
        self._store.put(self.KIND, key, result)


class StoreBackedKernelCaches(KernelCaches):
    """:class:`KernelCaches` whose content-keyed members share a store.

    * the LR solve memo becomes a :class:`StoreBackedSolveCache` (and flows
      into ``MMKPLRScheduler`` through the existing ``begin_run`` adoption);
    * EX-MEM candidate columns fall back to the store on a local miss;
    * :class:`~repro.optable.view.SharedSlices` stay process-local — they
      hold interned :class:`~repro.optable.table.OpTable` references and
      are cheap to refill, so persisting them would buy nothing.
    """

    def __init__(self, store: ContentStore, solve_cache_entries: int = 4096):
        super().__init__(solve_cache_entries)
        self._store = store
        self.solve_cache = StoreBackedSolveCache(store, solve_cache_entries)

    @property
    def store(self) -> ContentStore:
        return self._store

    def exmem_columns(self, fingerprint: str, max_configs: int | None):
        entry = super().exmem_columns(fingerprint, max_configs)
        if entry is not None:
            return entry
        entry = self._store.get("exmem", (fingerprint, max_configs))
        if entry is not None:
            # Promote through the parent so the local LRU bound applies.
            super().store_exmem_columns(fingerprint, max_configs, entry)
        return entry

    def store_exmem_columns(
        self, fingerprint: str, max_configs: int | None, columns: tuple
    ) -> None:
        super().store_exmem_columns(fingerprint, max_configs, columns)
        self._store.put("exmem", (fingerprint, max_configs), columns)

    def info(self) -> dict:
        info = dict(super().info())
        info["store"] = self._store.counters()
        return info


def store_backed_caches(
    store: ContentStore | None, solve_cache_entries: int = 4096
) -> KernelCaches:
    """A :class:`KernelCaches` bound to ``store`` (plain caches when ``None``)."""
    if store is None:
        return KernelCaches(solve_cache_entries)
    return StoreBackedKernelCaches(store, solve_cache_entries)


def store_backed_activation_cache(
    store: ContentStore | None, maxsize: int = 4096
) -> ActivationCache:
    """An :class:`ActivationCache` bound to ``store`` (plain when ``None``)."""
    if store is None:
        return ActivationCache(maxsize)
    return StoreBackedActivationCache(store, maxsize)


__all__ = [
    "StoreBackedActivationCache",
    "StoreBackedKernelCaches",
    "StoreBackedSolveCache",
    "store_backed_activation_cache",
    "store_backed_caches",
]
