"""Byte-level backends of the persistent content-addressed store.

A backend is a namespaced ``(namespace, key) → bytes`` map — nothing more.
Everything value-shaped (pickling, versioned namespaces, the local LRU
front, statistics) lives in :class:`~repro.store.content.ContentStore`;
everything durability-shaped (files, transactions, cross-process locking)
lives here, behind the :class:`CacheBackend` protocol:

* :class:`MemoryBackend` — a lock-guarded dict for tests and for sharing
  between the threads of one process without touching disk.
* :class:`SQLiteBackend` — one SQLite file in WAL mode.  WAL gives the
  single-writer/many-reader discipline the process-pool workers need: every
  write is one implicit transaction, readers never block on the writer, and
  a contended write waits on ``busy_timeout`` instead of erroring.
  Connections are per thread *and per process* (guarded by PID, so a forked
  worker never reuses its parent's connection — SQLite connections must not
  cross ``fork``).

Backends never raise on malformed *values* — they store and return opaque
bytes.  They may raise :class:`sqlite3.Error` on a damaged database file;
the :class:`ContentStore` layer degrades those to misses.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Iterable, Protocol, runtime_checkable


@runtime_checkable
class CacheBackend(Protocol):
    """The byte-store protocol persistent caches are built on."""

    def get(self, namespace: str, key: str) -> bytes | None:
        """The stored value, or ``None`` when absent."""
        ...

    def put(self, namespace: str, key: str, value: bytes) -> None:
        """Store ``value`` under ``(namespace, key)``, replacing any entry."""
        ...

    def delete(self, namespace: str, key: str) -> None:
        """Drop one entry (absent entries are not an error)."""
        ...

    def namespaces(self) -> list[str]:
        """All namespaces currently holding entries (sorted)."""
        ...

    def count(self, namespace: str) -> tuple[int, int]:
        """``(entries, bytes)`` stored under one namespace."""
        ...

    def drop_namespace(self, namespace: str) -> int:
        """Delete every entry of one namespace; returns how many were dropped."""
        ...

    def trim(self, namespace: str, max_entries: int) -> int:
        """Evict the oldest entries beyond ``max_entries``; returns evictions."""
        ...

    def clear(self) -> None:
        """Drop everything."""
        ...

    def close(self) -> None:
        """Release any resources (idempotent)."""
        ...


class MemoryBackend:
    """An in-process :class:`CacheBackend` (tests, thread-shared stores).

    Insertion order doubles as age, so :meth:`trim` evicts oldest-first —
    the same discipline as the SQLite backend's ``created_s`` ordering.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, bytes]] = {}
        self._lock = threading.Lock()

    #: Memory backends cannot cross a process boundary.
    path = None

    def get(self, namespace: str, key: str) -> bytes | None:
        with self._lock:
            bucket = self._entries.get(namespace)
            return bucket.get(key) if bucket else None

    def put(self, namespace: str, key: str, value: bytes) -> None:
        with self._lock:
            bucket = self._entries.setdefault(namespace, {})
            # Re-insert so dict order keeps tracking write recency.
            bucket.pop(key, None)
            bucket[key] = bytes(value)

    def delete(self, namespace: str, key: str) -> None:
        with self._lock:
            bucket = self._entries.get(namespace)
            if bucket is not None:
                bucket.pop(key, None)

    def namespaces(self) -> list[str]:
        with self._lock:
            return sorted(ns for ns, bucket in self._entries.items() if bucket)

    def count(self, namespace: str) -> tuple[int, int]:
        with self._lock:
            bucket = self._entries.get(namespace, {})
            return len(bucket), sum(len(value) for value in bucket.values())

    def drop_namespace(self, namespace: str) -> int:
        with self._lock:
            bucket = self._entries.pop(namespace, {})
            return len(bucket)

    def trim(self, namespace: str, max_entries: int) -> int:
        with self._lock:
            bucket = self._entries.get(namespace)
            if bucket is None or len(bucket) <= max_entries:
                return 0
            doomed = list(bucket)[: len(bucket) - max_entries]
            for key in doomed:
                del bucket[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"MemoryBackend(namespaces={len(self._entries)})"


#: Transparent retries on ``database is locked`` before giving up.  The
#: 30 s ``busy_timeout`` already absorbs writer contention; this outer loop
#: only covers the rare lock error SQLite raises outside the busy handler
#: (e.g. during schema creation races at first open).
_LOCK_RETRIES = 5
_LOCK_RETRY_SLEEP_S = 0.05


class SQLiteBackend:
    """A :class:`CacheBackend` over one SQLite database file.

    Safe for concurrent use from many threads *and* many processes sharing
    the file: WAL journaling, a generous busy timeout, one implicit
    transaction per statement and per-thread/per-PID connections.  ``fork``
    safety matters because the service's process executor forks workers
    that inherit the parent's backend object — the PID check makes each
    worker open its own connection lazily.
    """

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(parent, exist_ok=True)
        self._local = threading.local()
        # Create the schema eagerly so a first concurrent access from N
        # processes races on CREATE TABLE IF NOT EXISTS here, under retry.
        self._connection()

    @property
    def path(self) -> str:
        """The database file path (the token workers reopen the store by)."""
        return self._path

    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            return conn
        conn = sqlite3.connect(
            self._path,
            timeout=30.0,
            isolation_level=None,  # autocommit: one statement, one txn
            check_same_thread=False,  # per-thread via threading.local anyway
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        self._retry(
            conn.execute,
            "CREATE TABLE IF NOT EXISTS entries ("
            " namespace TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " value BLOB NOT NULL,"
            " created_s REAL NOT NULL,"
            " PRIMARY KEY (namespace, key))",
        )
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    @staticmethod
    def _retry(operation, *args):
        for attempt in range(_LOCK_RETRIES):
            try:
                return operation(*args)
            except sqlite3.OperationalError as error:
                if "locked" not in str(error) or attempt == _LOCK_RETRIES - 1:
                    raise
                time.sleep(_LOCK_RETRY_SLEEP_S * (attempt + 1))

    def get(self, namespace: str, key: str) -> bytes | None:
        row = self._retry(
            self._connection().execute,
            "SELECT value FROM entries WHERE namespace = ? AND key = ?",
            (namespace, key),
        ).fetchone()
        return row[0] if row is not None else None

    def put(self, namespace: str, key: str, value: bytes) -> None:
        self._retry(
            self._connection().execute,
            "INSERT INTO entries (namespace, key, value, created_s)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT (namespace, key) DO UPDATE"
            " SET value = excluded.value, created_s = excluded.created_s",
            (namespace, key, sqlite3.Binary(bytes(value)), time.time()),
        )

    def delete(self, namespace: str, key: str) -> None:
        self._retry(
            self._connection().execute,
            "DELETE FROM entries WHERE namespace = ? AND key = ?",
            (namespace, key),
        )

    def namespaces(self) -> list[str]:
        rows = self._retry(
            self._connection().execute,
            "SELECT DISTINCT namespace FROM entries ORDER BY namespace",
        ).fetchall()
        return [row[0] for row in rows]

    def count(self, namespace: str) -> tuple[int, int]:
        row = self._retry(
            self._connection().execute,
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(value)), 0)"
            " FROM entries WHERE namespace = ?",
            (namespace,),
        ).fetchone()
        return int(row[0]), int(row[1])

    def drop_namespace(self, namespace: str) -> int:
        cursor = self._retry(
            self._connection().execute,
            "DELETE FROM entries WHERE namespace = ?",
            (namespace,),
        )
        return cursor.rowcount if cursor.rowcount >= 0 else 0

    def trim(self, namespace: str, max_entries: int) -> int:
        # Oldest-first eviction, exactly the LRU-by-write-time discipline of
        # the in-memory fronts.  One statement, hence one transaction — a
        # concurrent writer either lands before the snapshot (and may be
        # trimmed) or after (and survives); never half-deleted.
        cursor = self._retry(
            self._connection().execute,
            "DELETE FROM entries WHERE namespace = ? AND key NOT IN ("
            " SELECT key FROM entries WHERE namespace = ?"
            " ORDER BY created_s DESC, key LIMIT ?)",
            (namespace, namespace, max(0, max_entries)),
        )
        return cursor.rowcount if cursor.rowcount >= 0 else 0

    def clear(self) -> None:
        self._retry(self._connection().execute, "DELETE FROM entries")

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            conn.close()
            self._local.conn = None

    def __repr__(self) -> str:
        return f"SQLiteBackend({self._path!r})"


def _iter_backend_items(
    backend: CacheBackend, namespace: str
) -> Iterable[tuple[str, bytes]]:  # pragma: no cover — debugging aid
    """Yield every (key, value) of one namespace (diagnostics only)."""
    if isinstance(backend, MemoryBackend):
        with backend._lock:
            yield from list(backend._entries.get(namespace, {}).items())
    elif isinstance(backend, SQLiteBackend):
        rows = backend._connection().execute(
            "SELECT key, value FROM entries WHERE namespace = ?", (namespace,)
        )
        yield from rows


__all__ = ["CacheBackend", "MemoryBackend", "SQLiteBackend"]
