"""``repro.kernel`` — the incremental scheduling engine.

The paper's runtime manager re-solves the full hybrid-mapping MMKP on every
job arrival and departure; this package turns that decision path into a
delta-based admission pipeline:

* :class:`AdmissionPipeline` / :class:`KernelRun` — the composable
  ``snapshot → candidates → solve → commit`` stages the runtime manager
  drives instead of its inline seed path.
* :class:`ScheduleState` / :class:`LoadLedger` — the explicit, incrementally
  maintained companion of the committed schedule: O(1) committed completion
  times, the ghost-prune gate and shared per-segment busy-core rows for the
  governor, the budget admission check and the energy accounting.
* :class:`PackMemo` — the prefix-resumable EDF packing trajectory that lets
  Algorithm 1's configuration probes keep the placements of unaffected jobs
  and replay only the dirty suffix, with a from-scratch fallback whenever
  the prefix diverges.
* :class:`KernelCaches` — content-keyed warm starts (table slices, MMKP-LR
  relaxations, EX-MEM candidate columns) shared across runs, batch jobs and
  DSE sweep points.
* :func:`kernel_enabled` & friends — the ``REPRO_KERNEL`` switch that keeps
  the seed full-re-solve path alive for equivalence testing and
  like-for-like benchmarking (``REPRO_KERNEL=0``).

Everything the kernel does is an *exact* transformation: resumed packer
prefixes replay the identical float operations from the identical state,
ledger reads return the identical integers a segment rescan would sum, and
cache keys embed table fingerprints plus exact ratios — so schedules, batch
fingerprints and energy totals are bit-identical to the seed path, which
``tests/kernel/test_equivalence.py`` asserts for all four schedulers.
"""

from repro.kernel.caches import KernelCaches, tables_key
from repro.kernel.packmemo import PackMemo
from repro.kernel.pipeline import AdmissionPipeline, KernelRun
from repro.kernel.runtime import (
    kernel_disabled,
    kernel_enabled,
    kernel_override,
    set_kernel_enabled,
)
from repro.kernel.state import LoadLedger, ScheduleState

__all__ = [
    "AdmissionPipeline",
    "KernelCaches",
    "KernelRun",
    "LoadLedger",
    "PackMemo",
    "ScheduleState",
    "kernel_disabled",
    "kernel_enabled",
    "kernel_override",
    "set_kernel_enabled",
    "tables_key",
]
