"""Content-keyed warm-start caches shared across runs, jobs and sweeps.

A single :class:`KernelCaches` instance may back any number of runtime
managers — one manager's consecutive runs, every job of a
:class:`~repro.service.pool.SimulationService` batch, or every sweep point
of a DSE exploration.  Safety across heterogeneous jobs comes from content
keying: every sub-cache is keyed by operating-point-table fingerprints (and
the platform capacity where it matters), so two jobs share an entry only
when they pose the *same* mathematical sub-problem — which is exactly when
reuse is bit-identical.

All structures are either thread-safe (:class:`~repro.optable.view.SolveCache`)
or filled with idempotent immutable values under the GIL, so one instance
may serve the service's thread executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

from repro.obs import tracer as obs
from repro.optable.view import SharedSlices, SolveCache

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.config import ConfigTable


def tables_key(tables: Mapping[str, "ConfigTable"]) -> tuple:
    """Content identity of a table set (names + interned fingerprints)."""
    return tuple(
        sorted((name, table.optable.fingerprint) for name, table in tables.items())
    )


class KernelCaches:
    """Warm-start state the incremental kernel carries across runs.

    * :meth:`shared_slices` — one :class:`~repro.optable.view.SharedSlices`
      per ``(capacity, table set)``: capacity-fitting index sets and MMKP
      weight rows survive across activations and across batch jobs.
    * :attr:`solve_cache` — a fingerprint-keyed
      :class:`~repro.optable.view.SolveCache` for MMKP-LR's segment
      relaxations, shared deliberately so repeated relaxations across a
      batch hit (keys embed table fingerprints, capacities and exact
      ratios, so a hit replays the identical deterministic solve).
    * :meth:`exmem_columns` — EX-MEM's per-application candidate columns,
      keyed by ``(table fingerprint, truncation)``.
    """

    #: LRU bounds: a long-lived service may see many distinct table sets, so
    #: — like the relaxation memo — the warm-start stores must not grow
    #: without bound.  Slice sets hold full per-app weight rows and are few
    #: per homogeneous batch; EX-MEM columns are small and per table.
    MAX_SLICE_SETS = 64
    MAX_EXMEM_TABLES = 1024

    def __init__(self, solve_cache_entries: int = 4096):
        self._lock = threading.Lock()
        self._slices: OrderedDict[tuple, SharedSlices] = OrderedDict()
        self._exmem: OrderedDict[tuple, tuple] = OrderedDict()
        self.solve_cache = SolveCache(solve_cache_entries)

    def shared_slices(
        self, capacity, tables: Mapping[str, "ConfigTable"]
    ) -> SharedSlices:
        """The shared table slices for one (capacity, table set) pair."""
        key = (tuple(capacity), tables_key(tables))
        with self._lock:
            slices = self._slices.get(key)
            if slices is None:
                slices = self._slices[key] = SharedSlices()
            self._slices.move_to_end(key)
            while len(self._slices) > self.MAX_SLICE_SETS:
                self._slices.popitem(last=False)
            return slices

    def exmem_columns(self, fingerprint: str, max_configs: int | None):
        """Cached EX-MEM candidate columns, or ``None`` when not yet stored."""
        # Counting happens outside the lock (see SolveCache.get): the
        # critical section covers only the OrderedDict mutation.
        with self._lock:
            entry = self._exmem.get((fingerprint, max_configs))
            if entry is not None:
                self._exmem.move_to_end((fingerprint, max_configs))
        obs.count("cache.exmem.hit" if entry is not None else "cache.exmem.miss")
        return entry

    def store_exmem_columns(
        self, fingerprint: str, max_configs: int | None, columns: tuple
    ) -> None:
        """Store one application's EX-MEM candidate columns."""
        with self._lock:
            self._exmem[(fingerprint, max_configs)] = columns
            self._exmem.move_to_end((fingerprint, max_configs))
            while len(self._exmem) > self.MAX_EXMEM_TABLES:
                self._exmem.popitem(last=False)

    def info(self) -> dict[str, int]:
        """Cache population counters (diagnostics)."""
        with self._lock:
            return {
                "slice_sets": len(self._slices),
                "exmem_tables": len(self._exmem),
                **{
                    f"solve_cache_{key}": value
                    for key, value in self.solve_cache.info().items()
                },
            }
