"""Runtime switch between the incremental kernel and the seed decision path.

Mirrors :mod:`repro.optable.runtime` (the ``REPRO_OPTABLE`` gate of PR 4):
every layer the incremental scheduling engine touches — the EDF packer's
prefix-resumable placement, MMKP-MDF's monotone feasibility filtering, the
runtime manager's delta-based admission pipeline, the load-ledger reads of
the governor and the budget admission check — keeps its full re-solve
implementation alive behind this switch.  The kernel path is the default;
the seed path exists for

* the equivalence suite, which runs every workload through both paths and
  asserts bit-identical schedules, batch fingerprints and energy totals, and
* the benchmark harness, which reports arrival-handling throughput of the
  incremental kernel *relative to* the full re-solve path on the same host.

The initial state comes from the ``REPRO_KERNEL`` environment variable
(``0``/``false``/``no`` disables the incremental engine); tests flip it
locally with :func:`kernel_disabled` / :func:`kernel_override`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_ENABLED = os.environ.get("REPRO_KERNEL", "1") not in ("0", "false", "no")


def kernel_enabled() -> bool:
    """``True`` when the incremental kernel fast paths are in force."""
    return _ENABLED


def set_kernel_enabled(enabled: bool) -> bool:
    """Set the switch globally; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def kernel_override(enabled: bool):
    """Context manager pinning the switch to ``enabled`` within the block."""
    previous = set_kernel_enabled(enabled)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


def kernel_disabled():
    """Shorthand for ``kernel_override(False)`` (the seed full-resolve path)."""
    return kernel_override(False)
