"""Prefix-resumable EDF packing state (the delta half of Algorithm 2).

Algorithm 1 probes configurations by re-running the EDF packer on the full
trial assignment — every probe re-places *every* already-committed job from
an empty timeline, even though consecutive probes differ in exactly one
``(job, configuration)`` decision.  Because the packer places jobs in a
deterministic order (non-decreasing deadline, then name) and each placement
depends only on the segment state left by the placements before it, the
packed timeline after the first ``p`` placements is a pure function of the
first ``p`` ``(job, configuration)`` steps.

A :class:`PackMemo` records that trajectory: the step sequence of the last
pack plus a snapshot of the working segment state *after* every step.  The
next pack replays only the suffix after the longest shared step prefix —
unaffected jobs keep their packed mapping segments verbatim, the first
changed decision marks the dirty suffix, and the re-placed suffix is spliced
onto the shared prefix.  Since the resumed computation starts from the exact
state the seed computation would have reached and replays the identical
float operations, the packed schedule is bit-identical to a from-scratch
pack; the equivalence suite asserts it.

Snapshots are cheap because the working state is a list of *immutable*
segment records ``(start, end, mappings, usage)``: a snapshot is a shallow
list copy (pointer-width per segment) and placements copy-on-write only the
records they touch.

One memo is valid for exactly one scheduler activation (fixed ``now``, job
set, remaining ratios and capacity); it lives on the activation's
:class:`~repro.optable.view.ProblemView` and dies with it.
"""

from __future__ import annotations

#: One immutable working segment: ``(start, end, mappings, usage)`` with
#: ``mappings`` a tuple of :class:`~repro.core.segment.JobMapping` in
#: placement order and ``usage`` the per-type busy-core counts (ints).
SegmentRecord = tuple


def usage_columns(segments: list, dimension: int) -> list[list[int]]:
    """Struct-of-arrays twin of the records' usage tuples.

    ``usage_columns(segments, d)[k][i]`` equals ``segments[i][3][k]`` — one
    flat int list per resource type, so the packer's inner feasibility probe
    scans a column instead of unpacking a record tuple per segment.  The
    counts are plain ints (core counts), so the columnar probe performs the
    exact arithmetic of the record loop.  Derived in one pass per pack and
    kept in sync incrementally by the packer's placement mutations.
    """
    return [[record[3][k] for record in segments] for k in range(dimension)]


class PackMemo:
    """Trajectory of the most recent EDF pack over one activation.

    Attributes
    ----------
    steps:
        The ``(job name, configuration index)`` placement steps of the last
        pack, in EDF placement order.
    snapshots:
        ``snapshots[i]`` is the working segment state after the first ``i``
        steps (``snapshots[0]`` is the empty timeline); each snapshot is a
        list of immutable :data:`SegmentRecord` tuples, so keeping one per
        step costs a pointer-array copy, not a deep copy.
    resumed_steps / replayed_steps:
        Diagnostic counters: placements skipped by prefix reuse vs. actually
        executed (the kernel's delta-hit accounting reads them).
    """

    __slots__ = (
        "steps",
        "snapshots",
        "placements",
        "edf_jobs",
        "packs",
        "resumed_packs",
        "resumed_steps",
        "replayed_steps",
    )

    def __init__(self) -> None:
        self.steps: list[tuple[str, int]] = []
        self.snapshots: list[list[SegmentRecord]] = [[]]
        #: name → ``(config, resources row, execution time, JobMapping)`` of
        #: the job's most recently placed configuration (per-activation
        #: constants; re-derived only when the probed configuration changes).
        self.placements: dict[str, tuple] = {}
        #: The activation's full job set in EDF placement order (lazy).
        self.edf_jobs = None
        self.packs = 0
        #: Packs that resumed a non-empty shared prefix (vs. from scratch).
        self.resumed_packs = 0
        self.resumed_steps = 0
        self.replayed_steps = 0

    def resume(self, shared: int) -> list[SegmentRecord]:
        """Truncate the trajectory to ``shared`` steps and return a working copy.

        The returned list may be mutated freely by the caller (its records
        are immutable and shared with the snapshots).  The packer extends
        the trajectory by appending to :attr:`steps` and :attr:`snapshots`
        in lock-step, one entry per placement that passed its deadline
        check — the post-state of a *failed* placement is never recorded,
        because it is not a valid resume point (a later pack sharing the
        failing step must replay, and re-fail, it).
        """
        del self.steps[shared:]
        del self.snapshots[shared + 1 :]
        return list(self.snapshots[shared])
