"""Explicit, incrementally maintained schedule state (ledger + dirty set).

The seed runtime manager kept its run state implicit: every decision that
needed a fact about the committed schedule re-derived it by scanning the
segment list — ``completion_time`` walked all segments per overdue job,
ghost pruning walked all segments per finish round just to discover that
nothing needed pruning, and the budget admission check re-materialised a
truncated :class:`~repro.core.segment.Schedule` per admitted arrival.

:class:`ScheduleState` makes that state explicit.  It is rebuilt in one pass
per *commit* (the only time the committed schedule changes) and answers the
hot-path questions in O(1):

* ``completion_time(name)`` — the end of the job's last committed segment,
  exactly the value ``Schedule.completion_time`` scans for;
* ``needs_prune(finished, now)`` — whether any newly finished job still owns
  a segment ending after ``now``, i.e. whether the seed's
  ``_without_finished`` scan would return a changed schedule;
* ``dirty`` — the job names whose arrival/finish perturbed the schedule
  since the last solve (the delta the next activation is about).

:class:`LoadLedger` is the per-segment load side: lazily computed, cached
per-cluster busy-core rows for whichever consumer (governor, budget check,
analytical accounting) asks first — the rows are integer sums, so sharing
them across consumers cannot change any float downstream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.segment import MappingSegment, Schedule
    from repro.optable.table import OpTable

#: Matches the runtime manager's boundary tolerance.
_TIME_EPSILON = 1e-9


class LoadLedger:
    """Lazy per-segment busy-core rows, keyed by segment identity.

    One ledger accompanies one committed (or planned) schedule; rows are
    computed on first demand with the exact integer arithmetic of
    :func:`repro.optable.adapters.segment_busy_counts` and shared across the
    governor, the budget admission check and the analytical accounting.
    """

    __slots__ = ("_optables", "_dimension", "_rows")

    def __init__(self, optables: Mapping[str, "OpTable"], dimension: int):
        self._optables = optables
        self._dimension = dimension
        #: id(segment) → (segment, busy row); the segment reference keeps the
        #: id stable for the lifetime of the entry.
        self._rows: dict[int, tuple] = {}

    def busy_counts(self, segment: "MappingSegment") -> list[int]:
        """Per-cluster busy-core counts of ``segment`` (cached)."""
        entry = self._rows.get(id(segment))
        if entry is not None and entry[0] is segment:
            return entry[1]
        optables = self._optables
        if self._dimension == 2:
            # Unrolled two-cluster sum: the same integer adds in the same
            # mapping order as the generic loop, without the inner range().
            c0 = c1 = 0
            for mapping in segment:
                row = optables[mapping.application].resources[mapping.config_index]
                c0 += row[0]
                c1 += row[1]
            counts = [c0, c1]
        else:
            counts = [0] * self._dimension
            for mapping in segment:
                row = optables[mapping.application].resources[mapping.config_index]
                for k in range(self._dimension):
                    counts[k] += row[k]
        self._rows[id(segment)] = (segment, counts)
        return counts


class ScheduleState:
    """The committed schedule's incremental companion state.

    Rebuilt by :meth:`rebind` on every commit; read by the admission
    pipeline between commits.
    """

    __slots__ = ("schedule", "job_last_end", "dirty", "commits")

    def __init__(self) -> None:
        self.schedule: "Schedule | None" = None
        #: job name → end of its last committed segment.
        self.job_last_end: dict[str, float] = {}
        #: Names whose arrival/finish perturbed the schedule since the last
        #: scheduler activation (the delta the next solve is about; its size
        #: is reported per solve in the run's ``KERNEL`` event).
        self.dirty: set[str] = set()
        self.commits = 0

    def rebind(self, schedule: "Schedule") -> None:
        """Re-derive the state for a freshly committed schedule (one pass)."""
        last_end: dict[str, float] = {}
        for segment in schedule:
            end = segment.end
            for mapping in segment:
                last_end[mapping.job_name] = end
        self.schedule = schedule
        self.job_last_end = last_end
        self.commits += 1

    def completion_time(self, name: str) -> float | None:
        """O(1) twin of ``Schedule.completion_time`` for the committed plan."""
        return self.job_last_end.get(name)

    def needs_prune(self, finished: list[str], now: float) -> bool:
        """Would the seed's ghost-segment prune change the schedule?

        ``_without_finished`` returns a new schedule iff some no-longer
        active job is mapped in a segment ending after ``now``; every such
        job is one of the just-``finished`` ones (earlier finishes were
        pruned at their own finish time), so checking their last committed
        segment ends answers the question without scanning.
        """
        job_last_end = self.job_last_end
        boundary = now + _TIME_EPSILON
        for name in finished:
            end = job_last_end.get(name)
            if end is not None and end > boundary:
                return True
        return False
