"""The composable admission pipeline (``snapshot → candidates → solve → commit``).

This is the decision path that used to live inline in
``RuntimeManager._handle_arrival`` / ``_reschedule_at``, extracted into four
named stages over an explicit :class:`~repro.kernel.state.ScheduleState`:

``snapshot``
    Capture the arrival: materialise the :class:`~repro.core.request.Job`,
    record the request, mark the dirty set, stream the ``ARRIVAL`` event.
``candidates``
    Derive the scheduler candidates from the active set; overdue jobs (a
    deadline-violating governor may leave some) get their deadline relaxed
    to their *committed* completion time, read in O(1) from the schedule
    state instead of scanning the committed segment list.
``solve``
    Build the :class:`~repro.core.problem.SchedulingProblem`, seed its
    columnar view with the run's cross-activation
    :class:`~repro.optable.view.SharedSlices`, and activate the scheduler.
    The delta machinery lives below this stage: the EDF packer resumes from
    placement prefixes shared with the activation's previous probe, falling
    back to a full re-pack whenever the prefix diverges — which is what
    keeps every schedule bit-identical to the seed's full re-solve.
``commit``
    Prune, apply the governor, check the energy envelope and install the
    schedule — sharing one :class:`~repro.kernel.state.LoadLedger` across
    the governor, the budget check and the committed-state rebind.

The stages are ordinary methods, so subclasses (or tests) can compose or
instrument them individually; the runtime manager drives :meth:`admit` and
:meth:`reschedule` when ``REPRO_KERNEL`` is enabled and keeps its seed
inline path alive for ``REPRO_KERNEL=0``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.api.events import RunEvent, RunEventKind
from repro.core.problem import SchedulingProblem
from repro.core.request import Job
from repro.kernel.caches import KernelCaches
from repro.kernel.state import LoadLedger, ScheduleState
from repro.obs import tracer as obs

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.runtime.manager import RuntimeManager
    from repro.runtime.trace import RequestEvent
    from repro.schedulers.base import SchedulingResult


class KernelRun:
    """Per-run kernel context: warm-start caches, schedule state, counters."""

    __slots__ = ("caches", "slices", "state", "stats")

    def __init__(self, caches: KernelCaches, slices) -> None:
        self.caches = caches
        self.slices = slices
        self.state = ScheduleState()
        self.stats = {
            "activations": 0,
            "dirty_jobs": 0,
            "packs": 0,
            "resumed_steps": 0,
            "replayed_steps": 0,
            "prunes_skipped": 0,
            "prune_scans": 0,
        }

    def summary(self) -> dict:
        """The payload of the run's ``KERNEL`` stream event."""
        stats = dict(self.stats)
        stats["commits"] = self.state.commits
        placed = stats["resumed_steps"] + stats["replayed_steps"]
        stats["delta_share"] = stats["resumed_steps"] / placed if placed else 0.0
        return stats


class AdmissionPipeline:
    """Drives one arrival (or finish-time reschedule) through the kernel.

    The pipeline is stateless across runs — everything mutable lives in the
    manager's run context and its :class:`KernelRun` — so one pipeline
    instance per manager serves concurrent runs.
    """

    def __init__(self, manager: "RuntimeManager"):
        self._manager = manager

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def snapshot(self, ctx, event: "RequestEvent") -> Job:
        """Stage 1: capture the arrival and mark the delta."""
        job = Job(
            name=event.name,
            application=event.application,
            arrival=event.time,
            deadline=event.absolute_deadline,
        )
        ctx.request_info[event.name] = event
        ctx.kernel.state.dirty.add(event.name)
        if ctx.observer is not None:
            ctx.observer(
                RunEvent(
                    RunEventKind.ARRIVAL,
                    event.time,
                    event.name,
                    {
                        "application": event.application,
                        "deadline": event.absolute_deadline,
                    },
                )
            )
        return job

    def candidates(self, ctx, now: float) -> list[Job]:
        """Stage 2: the active jobs as scheduler candidates.

        Mirrors the seed's ``_active_for_problem`` (see its docstring for
        the overdue-deadline relaxation), but reads committed completion
        times from the schedule state's ledger instead of scanning the
        committed segments per overdue job.
        """
        state = ctx.kernel.state
        candidates = []
        for job in ctx.active.values():
            if job.deadline < now:
                committed = state.completion_time(job.name)
                relaxed = max(now, committed if committed is not None else now)
                candidates.append(replace(job, deadline=relaxed))
            else:
                candidates.append(job)
        return candidates

    def solve(self, ctx, jobs: list[Job], now: float) -> "SchedulingResult":
        """Stage 3: pose the reduced problem and activate the scheduler."""
        manager = self._manager
        kernel = ctx.kernel
        problem = SchedulingProblem(
            manager._capacity, manager._tables, jobs, now=now
        )
        problem.share_view(kernel.slices)
        result = manager._scheduler.schedule(problem)
        ctx.log.activations += 1
        stats = kernel.stats
        stats["activations"] += 1
        # The delta this activation was about: how many of the candidates
        # were perturbed (arrived/finished) since the previous solve.
        stats["dirty_jobs"] += len(kernel.state.dirty)
        view = problem._view
        memo = getattr(view, "_pack_memo", None) if view is not None else None
        current = obs.current_span()
        if memo is not None:
            stats["packs"] += memo.packs
            stats["resumed_steps"] += memo.resumed_steps
            stats["replayed_steps"] += memo.replayed_steps
            # Pack resume-vs-fallback outcome of this activation, aggregated
            # here (once per solve) rather than in the per-candidate pack
            # hot path, where per-call counting would dominate the traced
            # run's overhead.  One ContextVar read for the whole burst.
            if current is not None:
                current.count("pack.resume", memo.resumed_packs)
                current.count("pack.scratch", memo.packs - memo.resumed_packs)
                current.count("pack.steps_resumed", memo.resumed_steps)
        if current is not None:
            current.annotate(dirty_jobs=len(kernel.state.dirty))
        kernel.state.dirty.clear()
        return result

    # ------------------------------------------------------------------ #
    # Drivers
    # ------------------------------------------------------------------ #
    def admit(self, ctx, event: "RequestEvent") -> None:
        """The kernel twin of the seed ``_handle_arrival`` decision path."""
        manager = self._manager
        with obs.span("phase.snapshot", category="pipeline"):
            job = self.snapshot(ctx, event)
        with obs.span("phase.candidates", category="pipeline") as candidates_span:
            candidate_jobs = self.candidates(ctx, event.time) + [job]
            candidates_span.annotate(jobs=len(candidate_jobs))
        with obs.span("phase.solve", category="pipeline") as solve_span:
            result = self.solve(ctx, candidate_jobs, event.time)
            solve_span.annotate(feasible=result.feasible)

        with obs.span("phase.commit", category="pipeline") as commit_span:
            if result.feasible:
                candidates = dict(ctx.active)
                candidates[job.name] = job
                ledger = LoadLedger(manager._optables, len(manager._capacity))
                plan = manager._plan(
                    ctx, result.schedule, candidates, fresh=True, ledger=ledger
                )
                if manager._budget is not None:
                    verdict = manager._budget.admits(
                        plan.schedule,
                        manager._tables,
                        now=event.time,
                        consumed_joules=ctx.log.total_energy,
                        platform=manager._platform,
                        decision=plan.decision,
                        optables=manager._optables,
                        ledger=ledger,
                    )
                    if not verdict:
                        # Deadline-feasible but over the power/energy
                        # envelope: rejected like an infeasible request.
                        ctx.log.budget_rejections += 1
                        ctx.admissions[event.name] = (False, result.search_time)
                        commit_span.annotate(outcome="budget-reject")
                        manager._emit_decision(
                            ctx, event, False, result, reason="budget"
                        )
                        return
                ctx.active[job.name] = job
                manager._commit(ctx, plan=plan)
                ctx.admissions[event.name] = (True, result.search_time)
                commit_span.annotate(outcome="admitted", speed=plan.speed)
                manager._emit_decision(ctx, event, True, result)
            else:
                # The new request is rejected; the previously committed
                # schedule keeps serving the already admitted jobs.
                ctx.admissions[event.name] = (False, result.search_time)
                commit_span.annotate(outcome="rejected")
                manager._emit_decision(ctx, event, False, result, reason="infeasible")

    def reschedule(self, ctx, time: float) -> None:
        """The kernel twin of ``_reschedule_at`` (remap on finish)."""
        manager = self._manager
        with obs.span("phase.candidates", category="pipeline"):
            candidate_jobs = self.candidates(ctx, time)
        with obs.span("phase.solve", category="pipeline") as solve_span:
            result = self.solve(ctx, candidate_jobs, time)
            solve_span.annotate(feasible=result.feasible)
        if result.feasible:
            with obs.span("phase.commit", category="pipeline"):
                ledger = LoadLedger(manager._optables, len(manager._capacity))
                plan = manager._plan(
                    ctx, result.schedule, ctx.active, fresh=True, ledger=ledger
                )
                manager._commit(ctx, plan=plan)
        # If rescheduling fails the previously committed schedule (which is
        # still feasible for the remaining jobs) stays in force.
