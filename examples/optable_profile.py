#!/usr/bin/env python
"""Profile the columnar operating-point kernel across a batch sweep.

Demonstrates the three pillars of ``repro.optable``:

1. **Interning** — every application table of a sweep canonicalises to one
   shared :class:`~repro.optable.OpTable` per distinct *content* (fingerprint
   hits count tables that were reused instead of rebuilt);
2. **Shared aggregates** — sort orders / minima / the Pareto index are
   computed once per interned table, not once per job per activation;
3. **Throughput** — the same census workload scheduled through the columnar
   path and the seed ``list[OperatingPoint]`` path, with the speedup the
   benchmark gate tracks.

Run with::

    PYTHONPATH=src python examples/optable_profile.py
"""

import time

from repro.dse import paper_operating_points, reduced_tables
from repro.optable import (
    as_optable,
    clear_intern_pool,
    columnar_override,
    intern_info,
)
from repro.platforms import odroid_xu4
from repro.schedulers import MMKPLRScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census


def main() -> None:
    platform = odroid_xu4()

    # ------------------------------------------------------------------ #
    # 1. Interning across a batch sweep
    # ------------------------------------------------------------------ #
    clear_intern_pool()
    tables = reduced_tables(paper_operating_points(platform), max_points=8)
    suite = EvaluationSuite.generate(tables, scaled_census(0.05), seed=2020)
    problems = [case.problem(platform, tables) for case in suite.cases]

    # Touch every job's table the way the schedulers do: identical tables
    # (same application across many jobs and cases) intern to one instance.
    table_ids = set()
    job_tables = 0
    for problem in problems:
        for job in problem.jobs:
            table_ids.add(id(problem.optable_for(job)))
            job_tables += 1
    print("== interning across the batch sweep ==")
    print(f"  job-table references resolved : {job_tables}")
    print(f"  distinct interned OpTables    : {len(table_ids)}")
    print(f"  intern pool after sweep 1     : {intern_info()}")

    # A second sweep (say, the next batch of a service) regenerates the same
    # DSE tables as *new* ConfigTable objects — identical content, so every
    # table resolves to the already interned instance (pure fingerprint hits).
    second_sweep = reduced_tables(paper_operating_points(platform), max_points=8)
    assert all(
        second_sweep[name].optable is tables[name].optable for name in second_sweep
    )
    print(f"  intern pool after sweep 2     : {intern_info()}")

    # ------------------------------------------------------------------ #
    # 2. Shared aggregates
    # ------------------------------------------------------------------ #
    sample = as_optable(next(iter(tables.values())))
    print("== precomputed aggregates of one interned table ==")
    print(f"  points            : {len(sample)}")
    print(f"  fingerprint       : {sample.fingerprint}")
    print(f"  min time / energy : {sample.min_time:.4f}s / {sample.min_energy:.4f}J")
    print(f"  per-cluster demand: max {sample.max_demand}")
    print(f"  energy order      : {sample.order_by_energy}")
    print(f"  Pareto index      : {sample.pareto_index}")

    # ------------------------------------------------------------------ #
    # 3. Columnar vs list throughput on the census workload
    # ------------------------------------------------------------------ #
    print("== scheduling throughput (census workload, best of 3) ==")
    cache_info = None
    for name, factory in (("mmkp-mdf", MMKPMDFScheduler), ("mmkp-lr", MMKPLRScheduler)):
        rates = {}
        for label, enabled in (("columnar", True), ("list", False)):
            best = float("inf")
            for _ in range(3):
                scheduler = factory()
                with columnar_override(enabled):
                    started = time.perf_counter()
                    for problem in problems:
                        scheduler.schedule(problem)
                    best = min(best, time.perf_counter() - started)
            rates[label] = len(problems) / best
            if name == "mmkp-lr" and enabled:
                cache_info = scheduler.solve_cache.info()
        print(
            f"  {name}: {rates['columnar']:.0f}/s columnar vs "
            f"{rates['list']:.0f}/s list "
            f"({rates['columnar'] / rates['list']:.2f}x)"
        )
    print(f"  Lagrangian solve cache after mmkp-lr sweep: {cache_info}")


if __name__ == "__main__":
    main()
