"""Sweep frequency governors and power budgets over a Poisson workload.

The seed pinned the platform at nominal frequency and reported energy as a
single scalar.  ``repro.energy`` makes frequency a runtime dimension: this
example replays the same batch under every frequency governor, prints the
energy/acceptance trade-off each one lands on, shows the per-cluster
busy/idle breakdown the incremental :class:`~repro.energy.EnergyMeter`
integrated online, and finally demonstrates power-cap admission control.

Run with::

    PYTHONPATH=src python examples/energy_budget.py
"""

from repro.analysis import format_energy_breakdown
from repro.energy import GOVERNORS
from repro.service import BatchSpec, SimulationService

ARRIVAL_RATES = [0.15, 0.3]
TRACES_PER_POINT = 8
NUM_REQUESTS = 10
POWER_CAP_WATTS = 1.85


def base_spec() -> BatchSpec:
    return BatchSpec.sweep(
        arrival_rates=ARRIVAL_RATES,
        schedulers=["mmkp-mdf"],
        traces_per_point=TRACES_PER_POINT,
        num_requests=NUM_REQUESTS,
        name="governor-study",
    )


def main() -> None:
    print(f"{len(base_spec())} traces per governor, platform: motivational 2L2B\n")

    print(f"{'governor':16s} {'energy [J]':>12s} {'acceptance':>11s} {'misses':>7s}")
    breakdowns = {}
    for governor in sorted(GOVERNORS):
        spec = base_spec().with_energy_policy(governor=governor)
        results = SimulationService(workers=2).run_batch(spec)
        assert not results.failures, [f.error for f in results.failures]
        aggregate = results.aggregate()
        misses = sum(
            1
            for result in results.ok
            for outcome in result.outcomes
            if outcome.accepted and not outcome.met_deadline
        )
        breakdowns[governor] = results.cluster_energy()
        print(
            f"{governor:16s} {aggregate['total_energy']:12.2f} "
            f"{aggregate['acceptance_rate'] * 100:10.1f}% {misses:7d}"
        )

    print()
    print(format_energy_breakdown(
        breakdowns["schedule-aware"],
        title="per-cluster breakdown (schedule-aware governor)",
    ))

    # Power-cap admission control: the same workload under a cap that forbids
    # the highest-power configurations.
    capped = SimulationService(workers=2).run_batch(
        base_spec().with_energy_policy(power_cap_watts=POWER_CAP_WATTS)
    )
    aggregate = capped.aggregate()
    print(
        f"\nwith a {POWER_CAP_WATTS} W power cap: "
        f"{aggregate['budget_rejections']} of {aggregate['requests']} requests "
        f"rejected by admission control, energy "
        f"{aggregate['total_energy']:.2f} J, acceptance "
        f"{aggregate['acceptance_rate'] * 100:.1f} %"
    )


if __name__ == "__main__":
    main()
