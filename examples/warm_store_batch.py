"""Warm-store batch reruns and the cluster executor in one script.

The batch service recomputes every scheduler activation from scratch on
every run.  With a :class:`~repro.store.ContentStore` attached, all the
content-keyed caches (activations, Lagrangian solves, EX-MEM columns, the
``OpTable`` intern pool) write through to one SQLite file — so rerunning
the same study is mostly store reads, and worker *processes* (the
``cluster`` executor) warm each other through the same file.

The script runs one census-flavoured sweep three times:

1. **cold** — a fresh store file is filled while the batch computes;
2. **warm** — the same batch again, served from the store (and asserted
   fingerprint-identical: a cache that changes answers is not a cache);
3. **cluster** — the same batch through the work-stealing
   :class:`~repro.cluster.ShardCoordinator` with worker processes sharing
   the store.

Run with::

    PYTHONPATH=src python examples/warm_store_batch.py

Set ``REPRO_STORE=0`` to watch the escape hatch: the store arguments are
ignored and all three runs compute cold (still fingerprint-identical).
"""

import tempfile
import time
from pathlib import Path

from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import odroid_xu4
from repro.service import BatchSpec, SimulationService

ARRIVAL_RATES = [1.0, 2.0]
TRACES_PER_POINT = 2
NUM_REQUESTS = 12


def build_spec() -> BatchSpec:
    """A solve-heavy sweep: MMKP-LR over reduced census tables."""
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=6)
    return BatchSpec.sweep(
        arrival_rates=ARRIVAL_RATES,
        schedulers=("mmkp-lr",),
        traces_per_point=TRACES_PER_POINT,
        num_requests=NUM_REQUESTS,
        base_seed=42,
        platform=platform,
        tables=tables,
        name="warm-store-demo",
    )


def timed_run(spec: BatchSpec, label: str, **service_kwargs):
    service = SimulationService(**service_kwargs)
    started = time.perf_counter()
    results = service.run_batch(spec)
    elapsed = time.perf_counter() - started
    assert not results.failures, [f.error for f in results.failures]
    print(f"{label:28s} {elapsed * 1e3:8.1f} ms   "
          f"fingerprint {results.fingerprint()[:16]}…")
    return service, results


def main() -> None:
    spec = build_spec()
    print(f"sweep: {len(spec)} census traces, MMKP-LR, "
          f"{NUM_REQUESTS} requests each\n")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "warm-store.db")

        _, cold = timed_run(spec, "cold (fills store)", store=store_path)
        warm_service, warm = timed_run(
            spec, "warm (serves store)", store=store_path
        )
        cluster_service, clustered = timed_run(
            spec,
            "cluster (2 workers, warm)",
            workers=2,
            executor="cluster",
            store=store_path,
        )

        assert warm.fingerprint() == cold.fingerprint()
        assert clustered.fingerprint() == cold.fingerprint()
        print("\nall three fingerprints identical — caching and sharding "
              "never change answers")

        if warm_service.store is not None:
            stats = warm_service.store.stats()
            print(f"\nstore {stats['path']} (version {stats['version']})")
            for namespace, entry in sorted(stats["namespaces"].items()):
                print(f"  {namespace:24s} {entry['entries']:5d} entries "
                      f"{entry['bytes']:8d} bytes")
            for kind, counters in sorted(stats["kinds"].items()):
                print(f"  {kind:12s} hits={counters['hits']:<5d} "
                      f"misses={counters['misses']:<5d} "
                      f"puts={counters['puts']}")
        else:
            print("\nREPRO_STORE=0 — store disabled, every run computed cold")

        if cluster_service.cluster_stats is not None:
            print(f"\ncluster: {cluster_service.cluster_stats.as_dict()}")


if __name__ == "__main__":
    main()
