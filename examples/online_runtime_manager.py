#!/usr/bin/env python3
"""Online runtime management of a dynamic multi-application workload.

This example exercises the full online path of the library, the scenario the
paper's introduction motivates: applications arrive at unpredictable times on
an embedded big.LITTLE device, and the runtime manager must admit or reject
each request and keep adapting the mapping of the running applications.

The script:

1. generates the per-application operating points with the DSE substrate,
2. synthesises a Poisson request trace over the three paper applications,
3. replays the trace through the runtime manager once with the adaptive
   MMKP-MDF scheduler and once with the MMKP-LR baseline,
4. reports acceptance rate, deadline compliance, energy and overhead.

Run with::

    python examples/online_runtime_manager.py [num_requests] [arrival_rate]
"""

import sys

from repro.dse import paper_operating_points
from repro.platforms import odroid_xu4
from repro.runtime import RuntimeManager, poisson_trace
from repro.schedulers import MMKPLRScheduler, MMKPMDFScheduler


def summarise(label: str, log) -> None:
    admitted = log.accepted
    misses = log.deadline_misses
    mean_overhead = (
        sum(o.scheduler_time for o in log.outcomes) / len(log.outcomes)
        if log.outcomes
        else 0.0
    )
    print(f"\n--- {label} ---")
    print(f"requests admitted      : {len(admitted)}/{len(log.outcomes)} "
          f"({log.acceptance_rate:.0%})")
    print(f"deadline misses        : {len(misses)}")
    print(f"total consumed energy  : {log.total_energy:.1f} J")
    print(f"busy until             : {log.makespan:.1f} s")
    print(f"scheduler activations  : {log.activations}")
    print(f"mean scheduling time   : {mean_overhead * 1000:.2f} ms per arrival")


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    arrival_rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4

    platform = odroid_xu4()
    print("Generating operating-point tables with the DSE substrate ...")
    tables = paper_operating_points(platform, input_sizes=("medium",))
    for name, table in sorted(tables.items()):
        print(f"  {name}: {len(table)} operating points")

    print(f"\nSynthesising a Poisson trace: {num_requests} requests, "
          f"{arrival_rate} arrivals/s")
    trace = poisson_trace(
        tables,
        arrival_rate=arrival_rate,
        num_requests=num_requests,
        deadline_factor_range=(1.2, 3.0),
        seed=42,
    )

    for label, scheduler in [
        ("adaptive MMKP-MDF runtime manager", MMKPMDFScheduler()),
        ("MMKP-LR baseline runtime manager", MMKPLRScheduler()),
    ]:
        manager = RuntimeManager.from_components(platform, tables, scheduler)
        log = manager.run(trace)
        summarise(label, log)
        # Sanity: the manager never lets an admitted job miss its deadline.
        assert not log.deadline_misses


if __name__ == "__main__":
    main()
