"""The ``repro.api`` front door: spec → session → streamed run → batch.

Demonstrates the three pieces of the public API working together:

1. a typed :class:`ExperimentSpec` built in code (and round-tripped through
   JSON, the same format ``repro-rm run`` consumes),
2. a streaming :class:`Session` run whose events are printed as they happen,
3. a plugin registered at runtime — a custom trace source — used by a spec
   with zero core edits, and
4. a seeded multi-trial batch through the simulation service.

Run with ``PYTHONPATH=src python examples/api_quickstart.py``.
"""

from repro.api import (
    EnergySpec,
    ExperimentSpec,
    RunEventKind,
    SchedulerSpec,
    Session,
    WorkloadSpec,
    register_trace_source,
)
from repro.runtime.trace import RequestEvent, RequestTrace


def main() -> None:
    # 1. One typed spec instead of scattered kwargs; full JSON round-trip.
    spec = ExperimentSpec(
        name="api-quickstart",
        workload=WorkloadSpec.poisson(arrival_rate=0.3, num_requests=10, seed=7),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
        energy=EnergySpec(governor="schedule-aware"),
    )
    assert ExperimentSpec.from_json(spec.to_json()) == spec
    print(f"spec {spec.name!r}: {spec.scheduler.name} / "
          f"{spec.energy.governor} governor / engine={spec.engine}")

    # 2. Stream the run: admission decisions and energy ticks as they happen.
    print("\nstreaming run events:")
    log = None
    for event in Session.from_spec(spec).stream():
        if event.kind is RunEventKind.END:
            log = event.data["log"]
        elif event.kind is not RunEventKind.INTERVAL:  # keep the output short
            print(f"  {event}")
    print(f"-> {len(log.accepted)}/{len(log.outcomes)} admitted, "
          f"{log.total_energy:.2f} J")

    # 3. A third-party trace source, registered — not patched — into the core.
    @register_trace_source("burst")
    def burst_source(tables, *, size, deadline=40.0):
        events = [
            RequestEvent(0.0, application, deadline, f"burst-{index}")
            for index, application in zip(range(size), sorted(tables))
        ]
        return RequestTrace(events)

    burst_spec = ExperimentSpec(
        name="burst-demo",
        workload=WorkloadSpec(source="burst", options={"size": 2}),
    )
    burst_log = Session.from_spec(burst_spec).run()
    print(f"\nplugin trace source: {len(burst_log.outcomes)} burst requests, "
          f"acceptance {burst_log.acceptance_rate * 100:.0f} %")

    # 4. Fan the first spec out into seeded trials (bit-reproducible for any
    # worker count — fingerprints are compared in the test suite).
    results = Session.from_spec(spec).run_batch(trials=8, workers=4)
    aggregate = results.aggregate()
    print(f"\nbatch of {aggregate['traces']} trials: "
          f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
          f"energy {aggregate['total_energy']:.2f} J "
          f"(fingerprint {results.fingerprint()[:12]}...)")


if __name__ == "__main__":
    main()
