#!/usr/bin/env python3
"""Reproduce the paper's motivational example (Section III, Fig. 1).

Two applications with the Table II operating points arrive on a device with
two little and two big cores.  Three runtime-manager variants are compared:

* a fixed mapper that only remaps when an application starts (Fig. 1a),
* a fixed mapper that also remaps when an application finishes (Fig. 1b),
* the adaptive MMKP-MDF mapper with mapping segments (Fig. 1c).

The script prints the consumed energy of each variant for scenario S1 and the
admission decisions for the tighter scenario S2, matching the numbers of the
paper (16.96 J / 15.49 J / 14.63 J, and the S2 rejection by the fixed mapper).

Run with::

    python examples/motivational_example.py
"""

from repro.runtime import RequestEvent, RequestTrace, RuntimeManager
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.workload.motivational import (
    FIGURE1_ENERGIES,
    SCENARIOS,
    motivational_platform,
    motivational_tables,
)

APPLICATIONS = {"sigma1": "lambda1", "sigma2": "lambda2"}


def build_trace(scenario: str) -> RequestTrace:
    """Turn a Table I scenario into a request trace for the runtime manager."""
    events = []
    for name, (arrival, deadline) in SCENARIOS[scenario].items():
        events.append(
            RequestEvent(arrival, APPLICATIONS[name], deadline - arrival, name)
        )
    return RequestTrace(events)


def run_variant(label: str, scheduler, remap_on_finish: bool, scenario: str):
    manager = RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        scheduler,
        remap_on_finish=remap_on_finish,
    )
    log = manager.run(build_trace(scenario))
    return label, log


def main() -> None:
    print("Scenario S1 (Table I): sigma1 deadline 9 s, sigma2 deadline 5 s")
    print(f"{'variant':45s} {'energy [J]':>11s} {'paper [J]':>10s}")
    variants = [
        ("fixed mapper, remap @ start (Fig. 1a)", FixedMinEnergyScheduler(), False,
         FIGURE1_ENERGIES["fixed_remap_at_start"]),
        ("fixed mapper, remap @ start+finish (Fig. 1b)", FixedMinEnergyScheduler(), True,
         FIGURE1_ENERGIES["fixed_remap_at_start_and_finish"]),
        ("adaptive mapper, MMKP-MDF (Fig. 1c)", MMKPMDFScheduler(), False,
         FIGURE1_ENERGIES["adaptive"]),
    ]
    for label, scheduler, remap, paper in variants:
        _, log = run_variant(label, scheduler, remap, "S1")
        print(f"{label:45s} {log.total_energy:11.2f} {paper:10.2f}")

    print()
    print("Scenario S2 (tight): sigma2 deadline 4 s")
    for label, scheduler, remap in [
        ("fixed mapper", FixedMinEnergyScheduler(), False),
        ("adaptive mapper (MMKP-MDF)", MMKPMDFScheduler(), False),
    ]:
        _, log = run_variant(label, scheduler, remap, "S2")
        admitted = ", ".join(o.name for o in log.accepted)
        rejected = ", ".join(o.name for o in log.rejected) or "none"
        print(f"{label:30s} admitted: [{admitted}]  rejected: [{rejected}]  "
              f"energy: {log.total_energy:.2f} J")

    print()
    print("With explicit adaptations the runtime manager both saves energy in S1")
    print("and admits the request that a fixed mapper must reject in S2.")


if __name__ == "__main__":
    main()
