#!/usr/bin/env python3
"""Design-space exploration: from dataflow applications to operating points.

The hybrid mapping flow of the paper prepares, at design time, a Pareto table
of operating points per application.  This example regenerates those tables
for the three evaluation applications (speaker recognition, audio filter,
pedestrian recognition) on the Odroid XU4 platform model:

1. build the synthetic KPN models,
2. enumerate every (little, big) core allocation,
3. derive a balanced process-to-core mapping and simulate it,
4. Pareto-filter the results,
5. print the tables and export them to JSON for the runtime manager.

Run with::

    python examples/dse_operating_points.py [output.json]
"""

import sys

from repro.dataflow import paper_applications
from repro.dse import DesignSpaceExplorer
from repro.io import save_json, tables_to_dict
from repro.platforms import odroid_xu4


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "operating_points.json"
    platform = odroid_xu4()
    explorer = DesignSpaceExplorer(platform)

    print(f"Platform: {platform}")
    tables = {}
    for model in paper_applications().values():
        print(f"\n=== {model.name} ({model.graph.num_processes} processes) ===")
        for variant_name, graph in sorted(model.variants().items()):
            table = explorer.explore(graph, application_name=variant_name)
            tables[variant_name] = table
            print(f"\n{variant_name}: {len(table)} Pareto-optimal operating points")
            print(f"  {'#A7':>4s} {'#A15':>5s} {'time [s]':>9s} {'energy [J]':>11s}")
            for point in sorted(table.points, key=lambda p: p.execution_time):
                little, big = point.resources
                print(
                    f"  {little:4d} {big:5d} {point.execution_time:9.2f} "
                    f"{point.energy:11.2f}"
                )

    save_json(tables_to_dict(tables), output_path)
    total = sum(len(t) for t in tables.values())
    print(f"\nExported {total} operating points across {len(tables)} application "
          f"variants to {output_path}")
    print("Feed this file to `repro-rm workload` / `repro-rm schedule` or load it "
          "with repro.io.tables_from_dict().")


if __name__ == "__main__":
    main()
