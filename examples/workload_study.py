#!/usr/bin/env python3
"""Scheduler comparison on a generated evaluation workload.

A compact version of the paper's full evaluation (Section VI) intended for
interactive use: it generates a down-scaled Table III workload, runs EX-MEM,
MMKP-LR and MMKP-MDF on every test case and prints the scheduling-rate,
relative-energy and overhead reports — the same rows and series as Fig. 2,
Table IV, Fig. 3 and Fig. 4.

Run with::

    python examples/workload_study.py [census_fraction] [max_points]

``census_fraction`` scales the 1676-case census of Table III (default 0.03);
``max_points`` caps the operating points per application so the exhaustive
EX-MEM reference stays affordable (default 8).
"""

import sys
import time

from repro.analysis import (
    evaluate_suite,
    format_fig2_scheduling_rate,
    format_fig3_scurve,
    format_fig4_search_time,
    format_table_iii,
    format_table_iv,
)
from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import odroid_xu4
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census


def main() -> None:
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    max_points = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    platform = odroid_xu4()
    print("Running the design-space exploration ...")
    tables = reduced_tables(paper_operating_points(platform), max_points=max_points)

    print(f"Generating the workload (census fraction {fraction}) ...")
    suite = EvaluationSuite.generate(tables, scaled_census(fraction), seed=2020)
    print(format_table_iii(suite))

    schedulers = [ExMemScheduler(), MMKPLRScheduler(), MMKPMDFScheduler()]
    names = [s.name for s in schedulers]
    print(f"\nEvaluating {len(schedulers)} schedulers on {len(suite)} test cases ...")
    started = time.perf_counter()
    results = evaluate_suite(suite, platform, tables, schedulers)
    print(f"done in {time.perf_counter() - started:.1f} s\n")

    print(format_fig2_scheduling_rate(results, names))
    print()
    print(format_table_iv(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
    print()
    print(format_fig3_scurve(results, ["mmkp-lr", "mmkp-mdf"], "ex-mem"))
    print()
    print(format_fig4_search_time(results, names))

    mdf = results.relative_energy_table(["mmkp-mdf", "mmkp-lr"], "ex-mem")
    overall_mdf = mdf["mmkp-mdf"][(None, 0)]
    overall_lr = mdf["mmkp-lr"][(None, 0)]
    print(
        f"\nSummary: MMKP-MDF is {100 * (overall_lr - overall_mdf):.1f} percentage "
        f"points closer to the EX-MEM optimum than MMKP-LR "
        f"(geomean {overall_mdf:.4f} vs {overall_lr:.4f})."
    )


if __name__ == "__main__":
    main()
