"""Sweep arrival rates × schedulers through the batch-simulation service.

The seed's examples drive one trace at a time through the runtime manager.
This example shows the ``repro.service`` way: describe the whole parameter
study declaratively as a :class:`~repro.service.jobs.BatchSpec`, fan it out
over workers with a shared activation cache, and post-process the ordered
results — here into an acceptance/energy table per (scheduler, arrival rate)
operating point.

Run with::

    PYTHONPATH=src python examples/batch_sweep.py
"""

from repro.service import BatchSpec, SimulationService

ARRIVAL_RATES = [0.1, 0.2, 0.4]
SCHEDULERS = ["mmkp-mdf", "mmkp-lr", "fixed"]
TRACES_PER_POINT = 10
NUM_REQUESTS = 8


def main() -> None:
    spec = BatchSpec.sweep(
        arrival_rates=ARRIVAL_RATES,
        schedulers=SCHEDULERS,
        traces_per_point=TRACES_PER_POINT,
        num_requests=NUM_REQUESTS,
        name="rate-x-scheduler",
    )
    print(
        f"sweep: {len(spec)} traces "
        f"({len(SCHEDULERS)} schedulers × {len(ARRIVAL_RATES)} rates × "
        f"{TRACES_PER_POINT} seeds, {NUM_REQUESTS} requests each)"
    )

    service = SimulationService(workers=4)
    results = service.run_batch(spec)
    assert not results.failures, [f.error for f in results.failures]

    # Group per (scheduler, arrival rate) sweep point.  Job names encode the
    # sweep coordinates; the trace seed pairing makes columns comparable.
    print(f"\n{'scheduler':10s} {'rate':>6s} {'acceptance':>11s} {'energy/trace':>13s} "
          f"{'activations':>12s}")
    for scheduler in SCHEDULERS:
        for rate in ARRIVAL_RATES:
            prefix = f"{scheduler}-rate{rate:g}-"
            point = [r for r in results if r.job_name.startswith(prefix)]
            requests = sum(r.requests for r in point)
            accepted = sum(r.accepted for r in point)
            energy = sum(r.total_energy for r in point) / len(point)
            activations = sum(r.activations for r in point)
            print(
                f"{scheduler:10s} {rate:6.2f} {accepted / requests:10.1%} "
                f"{energy:12.2f}J {activations:12d}"
            )

    print()
    print(service.metrics.format())
    print(f"\nbatch fingerprint: {results.fingerprint()[:16]}… "
          "(identical for any worker count)")


if __name__ == "__main__":
    main()
