#!/usr/bin/env python
"""Trace a run, compare scheduler phase profiles and export a Chrome trace.

Demonstrates the three faces of ``repro.obs``:

1. **Span tracing** — wrap any :class:`~repro.api.Session` run in a
   :class:`~repro.obs.Tracer` and every hot layer (arrivals, pipeline
   phases, solver calls, caches, energy accounting) emits spans into it,
   propagated across worker threads by ``contextvars``;
2. **Phase profiling** — :func:`~repro.obs.phase_summary` folds the span
   tree into per-phase wall-time totals and merged counters, rendered side
   by side for two schedulers the way ``repro-rm profile`` does;
3. **Export** — the merged Chrome trace-event document loads straight into
   Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``, one process
   row per scheduler.

Tracing never changes results: the traced runs below fingerprint-identical
to untraced ones (the invariant ``benchmarks/bench_obs_overhead.py`` gates).

Run with::

    PYTHONPATH=src python examples/trace_profile.py
"""

import json

from repro.api import ExperimentSpec, SchedulerSpec, Session, WorkloadSpec
from repro.obs import (
    Tracer,
    chrome_trace,
    merge_chrome_traces,
    phase_summary,
    render_phase_table,
)

SCHEDULERS = ("mmkp-mdf", "mmkp-lr")


def main() -> None:
    base = ExperimentSpec(
        name="trace-profile", workload=WorkloadSpec.scenario("S1")
    )

    profiles = {}
    documents = []
    for index, scheduler in enumerate(SCHEDULERS):
        spec = ExperimentSpec(
            name=f"{base.name}-{scheduler}",
            workload=base.workload,
            scheduler=SchedulerSpec(name=scheduler),
        )

        # 1. One traced run per scheduler.  The tracer is a context manager;
        #    everything executed inside it lands in one span tree.
        tracer = Tracer(name=scheduler)
        with tracer:
            log = Session.from_spec(spec).run()

        # Observability must be free of observer effects: same fingerprint
        # as the untraced run.
        untraced = Session.from_spec(spec).run()
        assert log.fingerprint() == untraced.fingerprint()

        print(
            f"{scheduler:10s} {len(tracer):5d} spans, "
            f"{len(log.accepted)}/{len(log.outcomes)} accepted, "
            f"{log.total_energy:.1f} J (traced == untraced: verified)"
        )

        # 2. Fold the span tree into a phase profile...
        profiles[scheduler] = phase_summary(tracer.span_dicts())
        # 3. ...and a Chrome trace-event process row.
        documents.append(
            chrome_trace(tracer, pid=index + 1, process_name=scheduler)
        )

    print()
    print(render_phase_table(profiles))

    path = "trace_profile.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merge_chrome_traces(documents), handle)
    print(f"\nwrote {path} — load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
