"""A deduplicated, store-warmed design-space sweep in one script.

The naive way to sweep (platform × scheduler × scenario) points is a loop
of independent experiments: each point re-explores the platform's full
design space and schedules its problems one at a time.
:func:`~repro.dse.sweep.run_sweep` plans the same grid as shared work:

1. the **planner** collapses the ``points × variants`` exploration demand
   to the unique (platform, variant, scale) tasks;
2. the **executor** fans the tasks out (serial here; thread/process/cluster
   by flag) while a :class:`~repro.store.ContentStore` memoises each
   finished task;
3. the **merge** rebuilds per-variant Pareto tables bit-identical to the
   serial explorer, summarised by a deterministic ``frontier_fingerprint``;
4. the **policy phase** drives every MMKP-LR point through one
   ``schedule_many`` call, so same-shape relaxations from *different*
   sweep points share single stacked solves.

The script runs the sweep twice against one store file — cold, then warm —
and asserts the fingerprints match: the rerun skips every exploration and
every solve, yet answers are bit-identical.

Run with::

    PYTHONPATH=src python examples/dse_sweep.py
"""

import tempfile
import time
from pathlib import Path

from repro.dse.sweep import SweepScenario, SweepSpec, run_sweep

SPEC = SweepSpec(
    platforms=("odroid-xu4",),
    input_sizes=("small",),
    schedulers=("mmkp-lr",),
    scenarios=(
        SweepScenario("weekday", fraction=0.01, seed=2020),
        SweepScenario("weekend", fraction=0.01, seed=2021),
        SweepScenario("peak", fraction=0.01, seed=2022),
    ),
)


def run_once(label: str, store_path: str):
    started = time.perf_counter()
    result = run_sweep(SPEC, executor="serial", store=store_path)
    elapsed = time.perf_counter() - started
    stats = result.stats
    print(f"== {label} ({elapsed * 1e3:.0f} ms) ==")
    print(
        f"  plan: {stats['points']} points demanded "
        f"{stats['explorations_demanded']} explorations, "
        f"{stats['explorations_unique']} unique "
        f"({stats['explorations_deduped']} deduped)"
    )
    print(
        f"  store: {stats['store_hits']} hits, {stats['store_misses']} misses"
    )
    solver = stats["solver"]
    print(
        f"  solver: {solver['solved']} solved of {solver['requested']} "
        f"requested ({solver['cross_group_deduped']} shared across points)"
    )
    for point in result.points:
        print(
            f"    {point['point']}: {point['feasible']}/{point['cases']} "
            f"feasible, energy {point['energy']:.1f}"
        )
    print(f"  fingerprint: {result.frontier_fingerprint[:16]}...")
    return result


def main():
    with tempfile.TemporaryDirectory() as tmp:
        store_path = str(Path(tmp) / "sweep-store.db")
        cold = run_once("cold sweep (fills the store)", store_path)
        warm = run_once("warm sweep (served from the store)", store_path)
    assert warm.frontier_fingerprint == cold.frontier_fingerprint
    assert warm.points == cold.points
    print("warm rerun is bit-identical to the cold sweep")


if __name__ == "__main__":
    main()
