"""The ``repro.gateway`` daemon: scheduler-as-a-service in one process.

Demonstrates the full client-facing surface of the gateway:

1. a daemon started in-process (an :class:`InProcessGateway` on an
   ephemeral port — production deployments use ``repro-rm serve``),
2. a run submitted over HTTP whose Server-Sent Events are streamed live and
   rebuilt into typed :class:`RunEvent` objects,
3. the remote-equivalence contract — the gateway run's result fingerprint
   matches an in-process ``Session.run()`` of the same spec exactly,
4. a warm named session: the second submission reuses the tenant's kernel
   caches and the materialised session,
5. a seeded batch fan-out through ``POST /batches``, and
6. the daemon's health and Prometheus metrics endpoints.

Run with ``PYTHONPATH=src python examples/gateway_quickstart.py``.
"""

from repro.api import (
    ExperimentSpec,
    RunEvent,
    RunEventKind,
    SchedulerSpec,
    Session,
    WorkloadSpec,
)
from repro.gateway import GatewayClient, GatewayConfig, InProcessGateway


def main() -> None:
    spec = ExperimentSpec(
        name="gateway-quickstart",
        workload=WorkloadSpec.poisson(arrival_rate=0.3, num_requests=8, seed=7),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
    )

    with InProcessGateway(GatewayConfig(port=0)) as gateway:
        client = GatewayClient(gateway.base_url, tenant="quickstart")
        health = client.healthz()
        print(f"daemon up at {gateway.base_url} "
              f"(protocol {health['protocol']}, status {health['status']})")

        # 1. Submit and follow the live event stream (SSE over plain http).
        record = client.submit_run(spec, session="warm-demo")
        print(f"\nsubmitted {record['id']}; streaming its events:")
        for payload in client.events(record["id"]):
            event = RunEvent.from_dict(payload)
            if event.kind not in (RunEventKind.INTERVAL, RunEventKind.END):
                print(f"  {event}")
        status = client.wait_run(record["id"])
        result = status["result"]
        print(f"-> {result['accepted']}/{result['requests']} admitted, "
              f"{result['total_energy']:.2f} J, "
              f"fingerprint {result['fingerprint'][:16]}…")

        # 2. Remote execution is an equivalence, not an approximation.
        local = Session.from_spec(spec).run()
        assert result["fingerprint"] == local.fingerprint()
        print("remote fingerprint == in-process Session.run() fingerprint")

        # 3. Warm named session: same result, served from warm caches.
        warm = client.run(spec, session="warm-demo")
        assert warm["result"]["fingerprint"] == result["fingerprint"]
        print(f"warm rerun {warm['id']} reproduced the result exactly")

        # 4. Seeded trials fan out on the daemon (POST /batches).
        batch = client.submit_batch(spec, trials=4)
        batch_status = client.wait_batch(batch["id"])
        aggregate = batch_status["result"]["aggregate"]
        print(f"\nbatch {batch['id']}: {aggregate['traces']} trials, "
              f"acceptance {aggregate['acceptance_rate'] * 100:.1f} %, "
              f"fingerprint {batch_status['result']['fingerprint'][:16]}…")

        # 5. Observability: Prometheus text exposition.
        runs_line = next(
            line for line in client.metrics_text().splitlines()
            if line.startswith("repro_gateway_runs_completed")
        )
        print(f"\nmetrics sample: {runs_line}")
    print("daemon drained cleanly")


if __name__ == "__main__":
    main()
