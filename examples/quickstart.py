#!/usr/bin/env python3
"""Quickstart: schedule two firm real-time jobs on a big.LITTLE device.

This is the smallest end-to-end use of the library's public API:

1. describe a heterogeneous platform,
2. give every application a table of operating points (cores, time, energy),
3. describe the currently unfinished jobs,
4. ask the MMKP-MDF runtime-manager heuristic for an energy-minimal schedule.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ConfigTable,
    Job,
    MMKPMDFScheduler,
    OperatingPoint,
    ResourceVector,
    SchedulingProblem,
)
from repro.platforms import big_little


def main() -> None:
    # A device with two little and two big cores (the motivational platform).
    platform = big_little(num_little=2, num_big=2)

    # Operating points of a video decoder: (little, big) cores -> time, energy.
    decoder = ConfigTable(
        "decoder",
        [
            OperatingPoint(ResourceVector([1, 0]), execution_time=16.8, energy=7.9),
            OperatingPoint(ResourceVector([2, 0]), execution_time=10.3, energy=7.0),
            OperatingPoint(ResourceVector([2, 1]), execution_time=5.3, energy=8.9),
            OperatingPoint(ResourceVector([2, 2]), execution_time=4.7, energy=11.0),
        ],
    )
    # ... and of an audio filter.
    audio = ConfigTable(
        "audio",
        [
            OperatingPoint(ResourceVector([1, 0]), execution_time=10.0, energy=2.0),
            OperatingPoint(ResourceVector([1, 1]), execution_time=3.5, energy=6.4),
            OperatingPoint(ResourceVector([2, 1]), execution_time=3.0, energy=5.7),
        ],
    )

    # Two unfinished jobs: the decoder is 20 % done, the audio job just arrived.
    jobs = [
        Job("video", "decoder", arrival=0.0, deadline=9.0, remaining_ratio=0.8),
        Job("music", "audio", arrival=1.0, deadline=5.0),
    ]

    problem = SchedulingProblem(
        platform, {"decoder": decoder, "audio": audio}, jobs, now=1.0
    )
    result = MMKPMDFScheduler().schedule(problem)

    if not result.feasible:
        print("The request set was rejected (no feasible schedule).")
        return

    print(f"Schedule found: {result.energy:.2f} J, "
          f"computed in {result.search_time * 1000:.2f} ms")
    print("Chosen operating points:", dict(result.assignment))
    print("Mapping segments:")
    for segment in result.schedule:
        active = ", ".join(
            f"{m.job_name}(config {m.config_index})" for m in segment
        )
        print(f"  [{segment.start:5.2f} s, {segment.end:5.2f} s)  {active}")

    report = problem.validate(result.schedule)
    print("Constraints satisfied:", report.feasible)


if __name__ == "__main__":
    main()
