"""E13 — store-aware DSE sweeps: planner dedupe + cross-point batched solves.

The pre-sweep serial path treats every sweep point — one (platform,
scheduler, scenario) combination — as an independent experiment: it rebuilds
the platform's operating-point tables with a fresh
:class:`~repro.dse.explorer.DesignSpaceExplorer` and schedules the
scenario's problems one at a time with a fresh scheduler.  That is the
honest baseline; nothing in the seed code shares work across points.

:func:`~repro.dse.sweep.run_sweep` plans the same points, collapses the
``points × variants`` exploration demand to the unique (platform, variant,
scale) tasks, and drives every MMKP-LR point through a *single*
``schedule_many`` call so same-shape relaxations from different points land
in one stacked solve.  The acceptance bar is **≥ 2.5x** sweep wall clock
over the serial path, with the frontier fingerprint bit-identical to the
baseline tables and a non-zero ``cross_group_deduped`` counter — the
speedup must come from provable shared work, not from approximation.

``run_all.py`` imports :func:`measure_dse_sweep` directly so the gated CI
metric and this pytest bench can never drift apart.  Scale knobs (smoke
mode pins them down): ``REPRO_BENCH_SWEEP_SIZES``,
``REPRO_BENCH_SWEEP_SCENARIOS``, ``REPRO_BENCH_SWEEP_FRACTION``.
"""

import os
import time

from repro.api.registry import schedulers as scheduler_registry
from repro.dse import paper_operating_points
from repro.dse import sweep as sweep_module
from repro.dse.sweep import SweepScenario, SweepSpec, frontier_fingerprint, run_sweep
from repro.platforms import odroid_xu4
from repro.workload import EvaluationSuite

#: The sweep engine must beat the per-point serial path by at least this.
MIN_SWEEP_SPEEDUP = 2.5


def _scale() -> dict:
    return {
        "input_sizes": tuple(
            os.environ.get("REPRO_BENCH_SWEEP_SIZES", "small").split(",")
        ),
        "scenarios": int(os.environ.get("REPRO_BENCH_SWEEP_SCENARIOS", "3")),
        "fraction": float(os.environ.get("REPRO_BENCH_SWEEP_FRACTION", "0.01")),
    }


def _spec() -> SweepSpec:
    scale = _scale()
    return SweepSpec(
        platforms=("odroid-xu4",),
        input_sizes=scale["input_sizes"],
        schedulers=("mmkp-lr",),
        scenarios=tuple(
            SweepScenario(f"s{index}", fraction=scale["fraction"], seed=2020 + index)
            for index in range(scale["scenarios"])
        ),
    )


def _baseline_point(platform, spec: SweepSpec, scheduler_name, scenario) -> dict:
    """One sweep point the way the pre-sweep serial code runs it.

    Fresh explorer (inside :func:`paper_operating_points`), fresh scheduler,
    one :meth:`schedule` call per problem — no sharing with other points.
    Returns the point's tables plus the same summary fields the sweep's
    policy phase records, so the A/B equality check is field-for-field.
    """
    tables = paper_operating_points(platform, input_sizes=spec.input_sizes)
    suite = EvaluationSuite.generate(tables, scenario.census(), seed=scenario.seed)
    scheduler = scheduler_registry.build(scheduler_name)
    results = [
        scheduler.schedule(problem)
        for _, problem in suite.problems(platform, tables)
    ]
    feasible = [r for r in results if r.feasible]
    return {
        "tables": tables,
        "summary": {
            "point": f"{platform.name}|{scheduler_name}|{scenario.name}",
            "platform": platform.name,
            "scheduler": scheduler_name,
            "scenario": scenario.name,
            "cases": len(results),
            "feasible": len(feasible),
            "energy": sum(r.energy for r in feasible),
            "subgradient_iterations": sum(
                int(r.statistics.get("subgradient_iterations", 0)) for r in results
            ),
        },
    }


def measure_dse_sweep() -> dict:
    """Serial per-point wall time vs one :func:`run_sweep` of the same points."""
    spec = _spec()
    platform = odroid_xu4()

    started = time.perf_counter()
    baseline_points = [
        _baseline_point(platform, spec, scheduler_name, scenario)
        for scheduler_name in spec.schedulers
        for scenario in spec.scenarios
    ]
    baseline_s = time.perf_counter() - started
    baseline_fingerprint = frontier_fingerprint(
        {platform.name: baseline_points[0]["tables"]}
    )

    # A cold engine run: drop the module-level explorer memo so the sweep
    # pays its own exploration, not one a previous caller warmed.
    sweep_module._EXPLORERS.clear()
    started = time.perf_counter()
    result = run_sweep(spec, platforms=(platform,), executor="serial")
    sweep_s = time.perf_counter() - started

    # The speedup only counts if the answers are the same answers.
    assert result.frontier_fingerprint == baseline_fingerprint, (
        "sweep frontier diverged from the per-point serial tables"
    )
    expected = {entry["summary"]["point"]: entry["summary"] for entry in baseline_points}
    assert {p["point"]: p for p in result.points} == expected, (
        "sweep point summaries diverged from the per-point serial schedules"
    )
    solver = result.stats.get("solver", {})
    assert solver.get("cross_group_deduped", 0) > 0, (
        "sweep never shared a relaxation across sweep points"
    )
    assert result.stats["explorations_deduped"] > 0, (
        "sweep planner never deduplicated an exploration"
    )

    return {
        "scale": _scale(),
        "points": len(result.points),
        "explorations_demanded": result.stats["explorations_demanded"],
        "explorations_unique": result.stats["explorations_unique"],
        "explorations_deduped": result.stats["explorations_deduped"],
        "cross_point_deduped_solves": solver.get("cross_group_deduped", 0),
        "solver_requested": solver.get("requested", 0),
        "solver_solved": solver.get("solved", 0),
        "baseline_s": round(baseline_s, 4),
        "sweep_s": round(sweep_s, 4),
        "speedup": round(baseline_s / sweep_s, 2),
        "fingerprint": result.frontier_fingerprint,
    }


def test_dse_sweep_speedup():
    metrics = measure_dse_sweep()
    scale = metrics["scale"]
    print(
        f"\nE13 — DSE sweep ({metrics['points']} points, "
        f"sizes={','.join(scale['input_sizes'])}, fraction={scale['fraction']})"
    )
    print(f"{'configuration':28s} {'wall time':>12s}")
    print(f"{'serial per-point path':28s} {metrics['baseline_s']:11.3f}s")
    print(f"{'run_sweep (serial executor)':28s} {metrics['sweep_s']:11.3f}s")
    print(
        f"speedup: {metrics['speedup']:.1f}x "
        f"({metrics['explorations_deduped']} explorations deduped, "
        f"{metrics['cross_point_deduped_solves']} cross-point solve shares)"
    )
    assert metrics["speedup"] > MIN_SWEEP_SPEEDUP, (
        f"sweep only {metrics['speedup']:.1f}x over the serial path, "
        f"below the {MIN_SWEEP_SPEEDUP:.1f}x floor"
    )
