"""E4 — Table IV: geometric-mean energy relative to EX-MEM.

Runs MMKP-LR and MMKP-MDF against the EX-MEM reference over the workload and
prints the geometric means per (deadline level, job count) bucket.  Expected
shape (paper): both heuristics are optimal for a single job, MMKP-MDF stays
within a few percent of the optimum overall (paper: 3.6 %), MMKP-LR degrades
with the number of jobs and is clearly worse than MMKP-MDF overall
(paper: 16.7 % vs 3.6 %, i.e. MMKP-MDF wins by ~13 %).
"""

import pytest

from repro.analysis import format_table_iv
from repro.schedulers import ExMemScheduler
from repro.workload.testgen import DeadlineLevel

#: Table IV of the paper (geometric mean of energy relative to EX-MEM).
PAPER_TABLE_IV = {
    "mmkp-lr": {"weak": 1.1452, "tight": 1.1923, "all": 1.1665},
    "mmkp-mdf": {"weak": 1.0042, "tight": 1.0756, "all": 1.0356},
}


def test_table4_relative_energy(
    benchmark, suite_results, bench_suite, platform, bench_tables, scale_note
):
    """Print the regenerated Table IV and check who wins."""
    heuristics = ["mmkp-lr", "mmkp-mdf"]
    print(f"\nE4 — Table IV relative energy vs EX-MEM {scale_note}")
    print(format_table_iv(suite_results, heuristics, "ex-mem"))
    print("paper reference (overall):", PAPER_TABLE_IV)

    table = suite_results.relative_energy_table(heuristics, "ex-mem")

    # Single-job cases are solved optimally by every scheduler.
    for scheduler in heuristics:
        for level in (DeadlineLevel.WEAK, DeadlineLevel.TIGHT):
            value = table[scheduler].get((level, 1))
            if value is not None and value == value:
                assert value == pytest.approx(1.0, abs=1e-6)

    # No heuristic is ever better than the exhaustive reference.
    for scheduler in heuristics:
        for _, ratio in suite_results.relative_energies(scheduler, "ex-mem"):
            assert ratio >= 1.0 - 1e-9

    # MMKP-MDF beats MMKP-LR on the overall geometric mean (the paper's
    # headline: ~13 % better energy efficiency).
    mdf_overall = table["mmkp-mdf"][(None, 0)]
    lr_overall = table["mmkp-lr"][(None, 0)]
    print(f"overall geomean: mmkp-mdf {mdf_overall:.4f} vs mmkp-lr {lr_overall:.4f}")
    assert mdf_overall <= lr_overall + 1e-9
    # MMKP-MDF stays close to the optimum.
    assert mdf_overall <= 1.10

    # Benchmark: the EX-MEM reference on a representative two-job case (its
    # cost is what makes Table IV expensive to regenerate).
    cases = bench_suite.filtered(DeadlineLevel.TIGHT, 2) or bench_suite.cases
    problem = cases[0].problem(platform, bench_tables)
    reference = ExMemScheduler()
    benchmark(reference.schedule, problem)
