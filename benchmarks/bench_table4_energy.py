"""E4 — Table IV: geometric-mean energy relative to EX-MEM.

Runs MMKP-LR and MMKP-MDF against the EX-MEM reference over the workload and
prints the geometric means per (deadline level, job count) bucket.  Expected
shape (paper): both heuristics are optimal for a single job, MMKP-MDF stays
within a few percent of the optimum overall (paper: 3.6 %), MMKP-LR degrades
with the number of jobs and is clearly worse than MMKP-MDF overall
(paper: 16.7 % vs 3.6 %, i.e. MMKP-MDF wins by ~13 %).
"""

import pytest

from repro.analysis import format_table_iv
from repro.energy import (
    ScheduleAwareGovernor,
    analytical_schedule_energy,
    decide,
    stretch_schedule,
)
from repro.schedulers import ExMemScheduler, MMKPMDFScheduler
from repro.workload.testgen import DeadlineLevel

#: Table IV of the paper (geometric mean of energy relative to EX-MEM).
PAPER_TABLE_IV = {
    "mmkp-lr": {"weak": 1.1452, "tight": 1.1923, "all": 1.1665},
    "mmkp-mdf": {"weak": 1.0042, "tight": 1.0756, "all": 1.0356},
}


def test_table4_relative_energy(
    benchmark, suite_results, bench_suite, platform, bench_tables, scale_note
):
    """Print the regenerated Table IV and check who wins."""
    heuristics = ["mmkp-lr", "mmkp-mdf"]
    print(f"\nE4 — Table IV relative energy vs EX-MEM {scale_note}")
    print(format_table_iv(suite_results, heuristics, "ex-mem"))
    print("paper reference (overall):", PAPER_TABLE_IV)

    table = suite_results.relative_energy_table(heuristics, "ex-mem")

    # Single-job cases are solved optimally by every scheduler.
    for scheduler in heuristics:
        for level in (DeadlineLevel.WEAK, DeadlineLevel.TIGHT):
            value = table[scheduler].get((level, 1))
            if value is not None and value == value:
                assert value == pytest.approx(1.0, abs=1e-6)

    # No heuristic is ever better than the exhaustive reference.
    for scheduler in heuristics:
        for _, ratio in suite_results.relative_energies(scheduler, "ex-mem"):
            assert ratio >= 1.0 - 1e-9

    # MMKP-MDF beats MMKP-LR on the overall geometric mean (the paper's
    # headline: ~13 % better energy efficiency).
    mdf_overall = table["mmkp-mdf"][(None, 0)]
    lr_overall = table["mmkp-lr"][(None, 0)]
    print(f"overall geomean: mmkp-mdf {mdf_overall:.4f} vs mmkp-lr {lr_overall:.4f}")
    assert mdf_overall <= lr_overall + 1e-9
    # MMKP-MDF stays close to the optimum.
    assert mdf_overall <= 1.10

    # Benchmark: the EX-MEM reference on a representative two-job case (its
    # cost is what makes Table IV expensive to regenerate).
    cases = bench_suite.filtered(DeadlineLevel.TIGHT, 2) or bench_suite.cases
    problem = cases[0].problem(platform, bench_tables)
    reference = ExMemScheduler()
    benchmark(reference.schedule, problem)


def test_table4_dvfs_governor_energy(bench_suite, platform, bench_tables, scale_note):
    """Fixed frequency vs the schedule-aware governor over the census.

    Every MMKP-MDF schedule of the Table IV workload is costed twice under
    the same analytical per-core accounting: at nominal frequency and under
    the schedule-aware governor (slowest deadline-feasible OPPs).  The
    governor must save energy overall and introduce zero deadline misses.
    """
    scheduler = MMKPMDFScheduler()
    governor = ScheduleAwareGovernor()
    nominal = decide(platform, 1.0)
    total_fixed = total_scaled = 0.0
    scheduled = slowed = misses = 0
    for case in bench_suite:
        problem = case.problem(platform, bench_tables)
        result = scheduler.schedule(problem)
        if not result.feasible:
            continue
        scheduled += 1
        jobs = {job.name: job for job in problem.jobs}
        scale = governor.select_scale(
            result.schedule, jobs, problem.now, platform, bench_tables
        )
        stretched = stretch_schedule(result.schedule, problem.now, scale)
        total_fixed += analytical_schedule_energy(
            result.schedule, bench_tables, platform, nominal
        )
        total_scaled += analytical_schedule_energy(
            stretched, bench_tables, platform, decide(platform, scale)
        )
        slowed += scale < 1.0
        for name, job in jobs.items():
            completion = stretched.completion_time(name)
            if completion is not None and completion > job.deadline + 1e-6:
                misses += 1
    saving = 1.0 - total_scaled / total_fixed
    print(f"\nE4b — fixed vs schedule-aware governor {scale_note}")
    print(
        f"{scheduled} scheduled cases, {slowed} slowed down: "
        f"fixed {total_fixed:.1f} J vs governed {total_scaled:.1f} J "
        f"({saving * 100:.1f} % saved), {misses} deadline misses"
    )
    assert misses == 0
    assert total_scaled < total_fixed
