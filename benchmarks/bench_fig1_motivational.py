"""E1 — Motivational example (Tables I & II, Fig. 1).

Regenerates the three schedules of Fig. 1 by driving the runtime manager with
the fixed mapper (remap at start), the fixed mapper with remapping at start
and finish, and the adaptive MMKP-MDF mapper, and checks the paper's headline
numbers: 16.96 J, 15.49 J and 14.63 J, plus the rejection of scenario S2 by
the fixed mapper.
"""

import pytest

from repro.runtime import RequestEvent, RequestTrace, RuntimeManager
from repro.schedulers import FixedMinEnergyScheduler, MMKPMDFScheduler
from repro.workload.motivational import (
    FIGURE1_ENERGIES,
    SCENARIOS,
    motivational_platform,
    motivational_problem,
    motivational_tables,
)


def _trace(scenario: str) -> RequestTrace:
    requests = SCENARIOS[scenario]
    applications = {"sigma1": "lambda1", "sigma2": "lambda2"}
    return RequestTrace(
        [
            RequestEvent(arrival, applications[name], deadline - arrival, name)
            for name, (arrival, deadline) in requests.items()
        ]
    )


def _run(scheduler, remap_on_finish: bool, scenario: str):
    manager = RuntimeManager.from_components(
        motivational_platform(),
        motivational_tables(),
        scheduler,
        remap_on_finish=remap_on_finish,
    )
    return manager.run(_trace(scenario))


def test_fig1_energies(benchmark):
    """Print the Fig. 1 comparison and benchmark one adaptive RM activation."""
    variants = [
        ("Fig. 1(a) fixed mapper, remap @ start", FixedMinEnergyScheduler(), False,
         FIGURE1_ENERGIES["fixed_remap_at_start"]),
        ("Fig. 1(b) fixed mapper, remap @ start+finish", FixedMinEnergyScheduler(), True,
         FIGURE1_ENERGIES["fixed_remap_at_start_and_finish"]),
        ("Fig. 1(c) adaptive mapper (MMKP-MDF)", MMKPMDFScheduler(), False,
         FIGURE1_ENERGIES["adaptive"]),
    ]
    print("\nE1 — motivational example, scenario S1 (energy in joules)")
    print(f"{'variant':48s} {'paper':>8s} {'measured':>10s}")
    measured = {}
    for label, scheduler, remap, paper_value in variants:
        log = _run(scheduler, remap, "S1")
        measured[label] = log.total_energy
        print(f"{label:48s} {paper_value:8.2f} {log.total_energy:10.2f}")
        assert log.total_energy == pytest.approx(paper_value, abs=0.02)

    # Scenario S2: the fixed mapper must reject sigma2, the adaptive admits it.
    fixed_s2 = _run(FixedMinEnergyScheduler(), False, "S2")
    adaptive_s2 = _run(MMKPMDFScheduler(), False, "S2")
    print("scenario S2 acceptance: fixed mapper "
          f"{fixed_s2.acceptance_rate:.0%}, adaptive {adaptive_s2.acceptance_rate:.0%}")
    assert fixed_s2.acceptance_rate == pytest.approx(0.5)
    assert adaptive_s2.acceptance_rate == pytest.approx(1.0)

    # The measured overhead of one adaptive scheduler activation (t = 1 s).
    problem = motivational_problem("S1")
    scheduler = MMKPMDFScheduler()
    result = benchmark(scheduler.schedule, problem)
    assert result.feasible
