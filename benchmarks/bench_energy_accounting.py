"""E8 — overhead and savings of the online energy subsystem.

Two checks:

* the incremental :class:`~repro.energy.accounting.EnergyMeter` (per-cluster
  and per-job attribution on every executed interval) adds less than 10 %
  wall-clock overhead to ``RuntimeManager.run`` compared to running with
  accounting disabled (the seed's scalar-total-only behaviour);
* under analytical accounting, the schedule-aware governor beats the
  fixed-frequency performance governor on a Poisson workload with zero
  deadline misses.
"""

import time

from repro.energy import PerformanceGovernor, ScheduleAwareGovernor
from repro.runtime import RuntimeManager
from repro.runtime.trace import poisson_trace
from repro.schedulers import MMKPMDFScheduler
from repro.workload.motivational import motivational_platform, motivational_tables

#: Poisson workload driven through the manager for the overhead measurement.
NUM_REQUESTS = 150
ARRIVAL_RATE = 0.25
#: Acceptance threshold on the metered / unmetered wall-clock ratio.
MAX_OVERHEAD = 1.10
#: Best-of repetitions (the minimum filters scheduler/OS noise).
REPEATS = 5


def _best_run_seconds(manager, trace) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        manager.run(trace)
        best = min(best, time.perf_counter() - start)
    return best


def test_online_meter_overhead(benchmark):
    platform, tables = motivational_platform(), motivational_tables()
    trace = poisson_trace(
        tables, arrival_rate=ARRIVAL_RATE, num_requests=NUM_REQUESTS, seed=2020
    )
    metered = RuntimeManager.from_components(platform, tables, MMKPMDFScheduler())
    unmetered = RuntimeManager.from_components(
        platform, tables, MMKPMDFScheduler(), account_energy=False
    )
    # Warm up both paths, then take the best of several runs each.
    metered.run(trace)
    unmetered.run(trace)
    with_meter = _best_run_seconds(metered, trace)
    without_meter = _best_run_seconds(unmetered, trace)
    ratio = with_meter / without_meter
    print(
        f"\nE8 — meter overhead over {NUM_REQUESTS} requests: "
        f"{without_meter * 1000:.2f} ms -> {with_meter * 1000:.2f} ms "
        f"({(ratio - 1) * 100:+.1f} %)"
    )
    assert ratio < MAX_OVERHEAD, (
        f"online energy accounting costs {(ratio - 1) * 100:.1f} % "
        f"(budget: {(MAX_OVERHEAD - 1) * 100:.0f} %)"
    )
    benchmark(metered.run, trace)


def test_governor_savings_on_poisson_workload():
    platform, tables = motivational_platform(), motivational_tables()
    trace = poisson_trace(
        tables, arrival_rate=0.15, num_requests=50, seed=7
    )

    def run(governor):
        manager = RuntimeManager.from_components(
            platform, tables, MMKPMDFScheduler(), governor=governor
        )
        return manager.run(trace)

    fixed = run(PerformanceGovernor())
    aware = run(ScheduleAwareGovernor())
    saving = 1.0 - aware.total_energy / fixed.total_energy
    print(
        f"\nE8 — governor comparison over 50 Poisson requests: "
        f"performance {fixed.total_energy:.2f} J vs schedule-aware "
        f"{aware.total_energy:.2f} J ({saving * 100:.1f} % saved)"
    )
    assert not aware.deadline_misses
    assert aware.total_energy <= fixed.total_energy
