"""repro.obs — span-tracing overhead on the kernel arrival-handling run.

Re-runs the :mod:`bench_kernel_incremental` workload (high load, incremental
kernel on) with a live :class:`repro.obs.Tracer` around the whole run and
compares the best-of-N wall time against the untraced run.  Two gates:

* **enabled** tracing must stay under :data:`MAX_ENABLED_OVERHEAD`
  (default 5 %, ``REPRO_BENCH_OBS_MAX_OVERHEAD`` overrides) — every hot
  layer is instrumented (arrival spans, pipeline phases, solver spans,
  cache counters), so this bounds the *total* cost of observability;
* **disabled** tracing has no dedicated gate: the instrumented code runs
  in every other benchmark with tracing off, so the existing
  ``kernel_incremental`` speedup floor in ``BENCH_BASELINE.json`` is the
  disabled-overhead regression gate.

The traced run must stay bit-identical to the untraced one — observability
that changes behaviour is a bug, not overhead.
"""

from __future__ import annotations

import gc
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_kernel_incremental as kernel_bench  # noqa: E402

from repro.kernel import kernel_override  # noqa: E402
from repro.obs import Tracer  # noqa: E402
from repro.runtime.manager import RuntimeManager  # noqa: E402
from repro.schedulers import MMKPMDFScheduler  # noqa: E402

#: Acceptance ceiling on (traced - untraced) / untraced wall time.
MAX_ENABLED_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", "0.05")
)


def _one_run(platform, tables, trace, tracer):
    """One timed kernel run (fresh manager), traced when ``tracer`` is set."""
    manager = RuntimeManager.from_components(platform, tables, MMKPMDFScheduler())
    if tracer is None:
        started = time.perf_counter()
        log = manager.run(trace)
        return time.perf_counter() - started, log
    started = time.perf_counter()
    with tracer:
        log = manager.run(trace)
    return time.perf_counter() - started, log


def _fastest_half_mean(samples: list[float]) -> float:
    """Mean of the fastest half of ``samples`` (at least one)."""
    ordered = sorted(samples)
    half = ordered[: max(1, len(ordered) // 2)]
    return sum(half) / len(half)


def measure_tracing_overhead(repeats: int = 5, setup: tuple | None = None):
    """Traced-vs-untraced best-of-N wall times of the kernel workload.

    One untimed warm-up run, then the disabled and enabled measurements run
    in pairs with the order *randomised within each pair* (fixed seed): a
    host whose performance drifts — CPU frequency settling, cgroup
    throttling, periodic noisy neighbours — then penalises each side equally
    in expectation instead of systematically handing one side the slower
    slot (strict alternation can phase-lock with periodic interference).
    The collector is paused so a GC pass landing in one side's timing
    window cannot masquerade as tracing overhead.  ``setup`` lets
    :mod:`run_all` pass the workload it already built.

    Each side's wall time is the **mean of its fastest half** rather than a
    single best-of-N: the host's run-to-run jitter (CPU steal in shared
    containers) dwarfs the overhead being measured — identical untraced
    runs have been observed 35 % apart — and a ratio of two one-sample
    minima inherits one noisy slot per side in full.  Averaging the clean
    half keeps the low-bias character of a minimum while cutting the
    estimator's variance enough to resolve a few-percent ceiling.
    ``repeats`` is floored at 12 for the same reason: with 3 pairs a single
    noisy slot shows up as double-digit phantom overhead.
    """
    repeats = max(repeats, 12)
    platform, tables, trace = setup if setup is not None else kernel_bench._setup()
    order = random.Random(2020)
    disabled_runs: list[float] = []
    enabled_runs: list[float] = []
    disabled_log = enabled_log = None
    spans = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with kernel_override(True):
            _one_run(platform, tables, trace, None)  # warm-up, untimed
            for pair in range(repeats):
                sides = ("disabled", "enabled")
                if order.random() < 0.5:
                    sides = ("enabled", "disabled")
                for side in sides:
                    if side == "disabled":
                        seconds, disabled_log = _one_run(platform, tables, trace, None)
                        disabled_runs.append(seconds)
                    else:
                        tracer = Tracer(name="bench")
                        seconds, enabled_log = _one_run(platform, tables, trace, tracer)
                        enabled_runs.append(seconds)
                        spans = len(tracer)
                gc.collect()  # pay collection between pairs, not inside
    finally:
        if gc_was_enabled:
            gc.enable()
    assert kernel_bench.log_fingerprint(enabled_log) == kernel_bench.log_fingerprint(
        disabled_log
    ), "traced run diverged from the untraced run"
    disabled_s = _fastest_half_mean(disabled_runs)
    enabled_s = _fastest_half_mean(enabled_runs)
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead": enabled_s / disabled_s - 1.0,
        "spans": spans,
    }


def test_tracing_overhead():
    result = measure_tracing_overhead()
    print(
        f"\nrepro.obs tracing overhead ({result['spans']} spans):\n"
        f"  disabled: {result['disabled_s'] * 1e3:7.1f} ms\n"
        f"  enabled:  {result['enabled_s'] * 1e3:7.1f} ms\n"
        f"  overhead: {result['enabled_overhead'] * 100:+.2f} % "
        f"(ceiling {MAX_ENABLED_OVERHEAD * 100:.0f} %)"
    )
    assert result["enabled_overhead"] < MAX_ENABLED_OVERHEAD, (
        f"enabled tracing costs {result['enabled_overhead'] * 100:.2f} % "
        f"(ceiling {MAX_ENABLED_OVERHEAD * 100:.0f} %)"
    )
