"""repro.obs — span-tracing overhead on the kernel arrival-handling run.

Re-runs the :mod:`bench_kernel_incremental` workload (high load, incremental
kernel on) with a live :class:`repro.obs.Tracer` around the whole run and
compares the best-of-N wall time against the untraced run.  Two gates:

* **enabled** tracing must stay under :data:`MAX_ENABLED_OVERHEAD`
  (default 5 %, ``REPRO_BENCH_OBS_MAX_OVERHEAD`` overrides) — every hot
  layer is instrumented (arrival spans, pipeline phases, solver spans,
  cache counters), so this bounds the *total* cost of observability;
* **disabled** tracing has no dedicated gate: the instrumented code runs
  in every other benchmark with tracing off, so the existing
  ``kernel_incremental`` speedup floor in ``BENCH_BASELINE.json`` is the
  disabled-overhead regression gate.

The traced run must stay bit-identical to the untraced one — observability
that changes behaviour is a bug, not overhead.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_kernel_incremental as kernel_bench  # noqa: E402

from repro.kernel import kernel_override  # noqa: E402
from repro.obs import Tracer  # noqa: E402
from repro.runtime.manager import RuntimeManager  # noqa: E402
from repro.schedulers import MMKPMDFScheduler  # noqa: E402

#: Acceptance ceiling on (traced - untraced) / untraced wall time.
MAX_ENABLED_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_OBS_MAX_OVERHEAD", "0.05")
)


def _one_run(platform, tables, trace, tracer):
    """One timed kernel run (fresh manager), traced when ``tracer`` is set."""
    manager = RuntimeManager.from_components(platform, tables, MMKPMDFScheduler())
    if tracer is None:
        started = time.perf_counter()
        log = manager.run(trace)
        return time.perf_counter() - started, log
    started = time.perf_counter()
    with tracer:
        log = manager.run(trace)
    return time.perf_counter() - started, log


def measure_tracing_overhead(repeats: int = 5, setup: tuple | None = None):
    """Traced-vs-untraced best-of-N wall times of the kernel workload.

    One untimed warm-up run, then the disabled and enabled measurements
    interleave (disabled, enabled, disabled, enabled, ...) so drift in the
    host's performance over the measurement window cancels out instead of
    landing entirely on one side; the collector is paused so a GC pass
    landing in one side's timing window cannot masquerade as tracing
    overhead.  ``setup`` lets :mod:`run_all` pass the workload it already
    built.
    """
    platform, tables, trace = setup if setup is not None else kernel_bench._setup()
    disabled_s = enabled_s = float("inf")
    disabled_log = enabled_log = None
    spans = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with kernel_override(True):
            _one_run(platform, tables, trace, None)  # warm-up, untimed
            for _ in range(repeats):
                seconds, disabled_log = _one_run(platform, tables, trace, None)
                disabled_s = min(disabled_s, seconds)
                tracer = Tracer(name="bench")
                seconds, enabled_log = _one_run(platform, tables, trace, tracer)
                enabled_s = min(enabled_s, seconds)
                spans = len(tracer)
                gc.collect()  # pay collection between repeats, not inside
    finally:
        if gc_was_enabled:
            gc.enable()
    assert kernel_bench.log_fingerprint(enabled_log) == kernel_bench.log_fingerprint(
        disabled_log
    ), "traced run diverged from the untraced run"
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead": enabled_s / disabled_s - 1.0,
        "spans": spans,
    }


def test_tracing_overhead():
    result = measure_tracing_overhead()
    print(
        f"\nrepro.obs tracing overhead ({result['spans']} spans):\n"
        f"  disabled: {result['disabled_s'] * 1e3:7.1f} ms\n"
        f"  enabled:  {result['enabled_s'] * 1e3:7.1f} ms\n"
        f"  overhead: {result['enabled_overhead'] * 100:+.2f} % "
        f"(ceiling {MAX_ENABLED_OVERHEAD * 100:.0f} %)"
    )
    assert result["enabled_overhead"] < MAX_ENABLED_OVERHEAD, (
        f"enabled tracing costs {result['enabled_overhead'] * 100:.2f} % "
        f"(ceiling {MAX_ENABLED_OVERHEAD * 100:.0f} %)"
    )
