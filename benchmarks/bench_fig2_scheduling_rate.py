"""E3 — Fig. 2: scheduling success rate for tight deadlines.

Runs the three schedulers over the tight-deadline part of the workload and
prints the per-job-count success rates.  Expected shape (paper): all three are
equal for one job, EX-MEM dominates for three and four jobs (by up to ~14 %),
and MMKP-MDF stays within a few percentage points of MMKP-LR.
"""

from repro.analysis import format_fig2_scheduling_rate
from repro.schedulers import MMKPMDFScheduler
from repro.workload.testgen import DeadlineLevel

#: Fig. 2 of the paper (tight deadlines): scheduler -> rate per job count [%].
PAPER_FIG2 = {
    "ex-mem": {1: 82.9, 2: 73.8, 3: 81.8, 4: 61.2},
    "mmkp-lr": {1: 82.9, 2: 72.9, 3: 76.2, 4: 48.1},
    "mmkp-mdf": {1: 82.9, 2: 71.5, 3: 72.6, 4: 47.1},
}


def test_fig2_scheduling_rate(
    benchmark, suite_results, bench_suite, platform, bench_tables, scale_note
):
    """Print the regenerated Fig. 2 rows and check the qualitative shape."""
    names = ["ex-mem", "mmkp-lr", "mmkp-mdf"]
    print(f"\nE3 — Fig. 2 scheduling rate, tight deadlines {scale_note}")
    print(format_fig2_scheduling_rate(suite_results, names, DeadlineLevel.TIGHT))
    print("paper reference:", PAPER_FIG2)

    rates = {name: suite_results.scheduling_rate(name, DeadlineLevel.TIGHT) for name in names}
    job_counts = sorted(rates["ex-mem"])

    # Shape 1: EX-MEM never schedules fewer cases than the heuristics.
    for name in ("mmkp-lr", "mmkp-mdf"):
        for jobs in job_counts:
            assert rates[name][jobs] <= rates["ex-mem"][jobs] + 1e-9

    # Shape 2: single-job cases are identical across all three schedulers.
    single = {name: rates[name].get(1) for name in names}
    assert len({round(v, 6) for v in single.values()}) == 1

    # Shape 3: with weak deadlines everybody schedules (almost) everything
    # (the paper reports 100 % for all three algorithms).
    for name in names:
        weak = suite_results.scheduling_rate(name, DeadlineLevel.WEAK)
        assert all(rate >= 75.0 for rate in weak.values()), (name, weak)

    # Benchmark: one MMKP-MDF activation on a representative 4-job tight case.
    tight_cases = bench_suite.filtered(DeadlineLevel.TIGHT, 4) or bench_suite.filtered(
        DeadlineLevel.TIGHT
    )
    problem = tight_cases[0].problem(platform, bench_tables)
    scheduler = MMKPMDFScheduler()
    benchmark(scheduler.schedule, problem)
