"""E6 — Fig. 4: scheduling overhead (search time) per job count.

Two complementary views are produced:

* The aggregate statistics (median/mean/max per job count) over the whole
  workload, printed from the shared suite results — this is what the paper's
  box plots show.
* pytest-benchmark measurements of a single representative activation per
  (scheduler, job count), which give calibrated per-call timings on this host.

Expected shape (paper): EX-MEM grows exponentially with the job count
(average 152 s at four jobs on the authors' machine), MMKP-LR needs
milliseconds to hundreds of milliseconds, and MMKP-MDF is roughly an order of
magnitude faster than MMKP-LR.
"""

import pytest

from repro.analysis import format_fig4_search_time
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler
from repro.workload.testgen import DeadlineLevel

#: Average search times reported in the paper for four jobs (seconds).
PAPER_FOUR_JOB_AVERAGES = {"ex-mem": 152.0, "mmkp-lr": 0.163, "mmkp-mdf": 0.0057}

_SCHEDULERS = {
    "ex-mem": ExMemScheduler,
    "mmkp-lr": MMKPLRScheduler,
    "mmkp-mdf": MMKPMDFScheduler,
}


def test_fig4_aggregate_search_times(suite_results, scale_note, benchmark):
    """Print the box-plot statistics behind Fig. 4 and check the ordering."""
    names = list(_SCHEDULERS)
    print(f"\nE6 — Fig. 4 scheduling overhead {scale_note}")
    print(format_fig4_search_time(suite_results, names))
    print("paper four-job averages [s]:", PAPER_FOUR_JOB_AVERAGES)

    stats = {name: suite_results.search_time_stats(name) for name in names}
    job_counts = sorted(stats["mmkp-mdf"])
    largest = job_counts[-1]

    # Shape 1: MMKP-MDF is the fastest and EX-MEM the slowest at the largest
    # job count (mean values).
    assert stats["mmkp-mdf"][largest].mean < stats["mmkp-lr"][largest].mean
    assert stats["mmkp-lr"][largest].mean < stats["ex-mem"][largest].mean

    # Shape 2: MMKP-MDF beats MMKP-LR by roughly an order of magnitude.
    assert stats["mmkp-mdf"][largest].mean * 5 < stats["mmkp-lr"][largest].mean

    # Shape 3: every scheduler gets slower as the job count grows.
    for name in names:
        means = [stats[name][jobs].mean for jobs in job_counts]
        assert means[0] < means[-1]

    # Benchmark the cheap aggregation itself so this test also reports a number.
    benchmark(suite_results.search_time_stats, "mmkp-mdf")


@pytest.mark.parametrize("scheduler_name", list(_SCHEDULERS))
@pytest.mark.parametrize("num_jobs", [1, 2, 3, 4])
def test_fig4_single_activation(
    benchmark, scheduler_name, num_jobs, bench_suite, platform, bench_tables
):
    """Calibrated per-activation timing for one (scheduler, job count) pair."""
    cases = bench_suite.filtered(DeadlineLevel.TIGHT, num_jobs) or bench_suite.filtered(
        num_jobs=num_jobs
    )
    if not cases:
        pytest.skip(f"no generated test case with {num_jobs} jobs")
    problem = cases[0].problem(platform, bench_tables)
    scheduler = _SCHEDULERS[scheduler_name]()
    benchmark(scheduler.schedule, problem)
