"""E7 — Design-time operating-point tables (Section VI.A).

The paper benchmarks the three applications exhaustively on the Odroid XU4
and obtains 36 Pareto configurations for the audio filter, 35 for pedestrian
recognition and 28 for speaker recognition (summed over input sizes).  Our
substitution runs the trace-driven DSE over every core allocation and input
size; this benchmark prints the resulting table sizes and checks the
qualitative properties the runtime manager relies on.
"""

from repro.dse import DesignSpaceExplorer
from repro.dataflow import paper_applications

#: Pareto-point counts reported in Section VI.A of the paper.
PAPER_PARETO_COUNTS = {
    "audio_filter": 36,
    "pedestrian_recognition": 35,
    "speaker_recognition": 28,
}


def test_dse_pareto_tables(benchmark, full_tables, platform, scale_note):
    """Print the per-application Pareto counts and validate table shapes."""
    per_application: dict[str, int] = {}
    for name, table in full_tables.items():
        application = name.split("/")[0]
        per_application[application] = per_application.get(application, 0) + len(table)

    print(f"\nE7 — DSE-generated operating points {scale_note}")
    print(f"{'application':26s} {'paper':>6s} {'ours':>6s}")
    for application, paper_count in PAPER_PARETO_COUNTS.items():
        print(f"{application:26s} {paper_count:6d} {per_application[application]:6d}")

    # Every variant table is Pareto-optimal and spans both core types.
    for name, table in full_tables.items():
        assert table.is_pareto_optimal(), name
        assert any(point.resources[0] > 0 for point in table), name
        assert any(point.resources[1] > 0 for point in table), name
        # Big-core-only points are faster but hungrier than little-only points
        # (the Table II trade-off), whenever both extremes exist.
        little_only = [p for p in table if p.resources[1] == 0]
        big_only = [p for p in table if p.resources[0] == 0]
        if little_only and big_only:
            assert min(p.execution_time for p in big_only) < min(
                p.execution_time for p in little_only
            )
            assert min(p.energy for p in little_only) < min(p.energy for p in big_only)

    # Same order of magnitude as the paper's table sizes.
    for application, count in per_application.items():
        assert 10 <= count <= 80, (application, count)

    # Benchmark: exploring one application variant end to end.
    explorer = DesignSpaceExplorer(platform)
    graph = paper_applications()["pedestrian_recognition"].variant("medium")
    benchmark(explorer.explore, graph)
