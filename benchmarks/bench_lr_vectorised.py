"""repro.knapsack._dense — vectorised MMKP-LR admission vs the pure path.

Drives the MMKP-LR scheduler over the motivational scenarios plus the census
sample three ways and compares activation throughput:

* **pure sequential** — ``REPRO_SOLVER_NUMPY=0``: every segment relaxation
  runs the pure-Python subgradient loop, one activation at a time (the
  always-available reference path);
* **numpy sequential** — the dense backend solves each admission's
  relaxations one problem at a time (only instances above the
  ``DENSE_MIN_ELEMENTS`` threshold take the dense path);
* **numpy batched** — :meth:`MMKPLRScheduler.schedule_many` advances all
  activations lock-step and answers each round of SolveCache misses with one
  stacked :func:`~repro.knapsack.solve_lagrangian_many` solve.

Acceptance target of the dense backend: **>= 3x MMKP-LR activation
throughput** for batched-numpy admission over the pure sequential reference.
A second metric gates the solver in isolation: one stacked
``solve_lagrangian_many`` call over a paper-sized batch against the pure
per-problem loop.

Every mode must produce bit-identical schedules, assignments, energies and
statistics — the dense backend is a faster evaluation order of the same
arithmetic, and the fingerprint assertion here is the benchmark-side twin of
the equivalence suites in ``tests/knapsack``.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.knapsack import (
    HAVE_NUMPY,
    MMKPProblem,
    solve_lagrangian_many,
    solver_numpy_override,
)
from repro.schedulers import MMKPLRScheduler

#: The acceptance floor, minus measurement headroom for noisy CI hosts (the
#: checked-in BENCH_RESULTS.json records the actual ratio, ~5x locally).
MIN_ACTIVATION_SPEEDUP = 3.0


def _setup():
    from repro.dse import paper_operating_points, reduced_tables
    from repro.platforms import odroid_xu4
    from repro.workload import EvaluationSuite
    from repro.workload.motivational import motivational_problem
    from repro.workload.suite import scaled_census, table_iii_census

    fraction = float(os.environ.get("REPRO_BENCH_FRACTION", "0.05"))
    max_points = int(os.environ.get("REPRO_BENCH_MAX_POINTS", "8"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2020"))
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=max_points)
    census = table_iii_census() if fraction >= 1.0 else scaled_census(fraction)
    suite = EvaluationSuite.generate(tables, census, seed=seed)
    problems = [motivational_problem("S1"), motivational_problem("S2")]
    problems += [case.problem(platform, tables) for case in suite.cases]
    return problems


def _fingerprint(result) -> tuple:
    """Everything the modes must agree on — deliberately not ``search_time``."""
    schedule = result.schedule
    segments = (
        tuple(
            (
                repr(segment.start),
                repr(segment.end),
                tuple((m.job_name, m.config_index) for m in segment),
            )
            for segment in schedule
        )
        if schedule is not None
        else None
    )
    return (
        segments,
        tuple(sorted(result.assignment.items())),
        repr(result.energy),
        tuple(sorted(result.statistics.items())),
    )


def _sweep(problems, numpy_mode: bool, batched: bool):
    """One cold-cache pass over all problems; returns (seconds, fingerprints)."""
    scheduler = MMKPLRScheduler()  # fresh per sweep: solve memos start cold
    with solver_numpy_override(numpy_mode):
        started = time.perf_counter()
        if batched:
            results = scheduler.schedule_many(problems)
        else:
            results = [scheduler.schedule(problem) for problem in problems]
        seconds = time.perf_counter() - started
    return seconds, [_fingerprint(result) for result in results]


def _random_mmkp_batch(count: int = 48, seed: int = 2020) -> list[MMKPProblem]:
    """Paper-sized admission relaxations (ragged groups, 2-D weights)."""
    rng = random.Random(seed)
    problems = []
    for _ in range(count):
        groups = []
        for _ in range(rng.randint(4, 10)):
            items = []
            for _ in range(rng.randint(2, 12)):
                items.append(
                    (
                        -rng.random() * 10.0,
                        (float(rng.randint(0, 4)), float(rng.randint(0, 4))),
                    )
                )
            groups.append(items)
        capacities = [float(rng.randint(2, 8)), float(rng.randint(2, 8))]
        problems.append(
            MMKPProblem.from_columns(
                capacities,
                [[value for value, _ in group] for group in groups],
                [tuple(row for _, row in group) for group in groups],
            )
        )
    return problems


def measure_lr_vectorised(repeats: int = 3, setup: list | None = None) -> dict:
    """Best-of-N activation throughput of the three admission modes.

    Also gates bit-identity: all three modes must agree on every schedule,
    assignment, energy and statistics tuple before any ratio is reported.
    """
    problems = setup if setup is not None else _setup()

    best = {"pure_seq": float("inf"), "numpy_seq": float("inf"), "numpy_batch": float("inf")}
    prints: dict[str, list] = {}
    _sweep(problems, numpy_mode=HAVE_NUMPY, batched=True)  # warm-up, untimed
    for _ in range(repeats):
        for mode, (numpy_mode, batched) in {
            "pure_seq": (False, False),
            "numpy_seq": (HAVE_NUMPY, False),
            "numpy_batch": (HAVE_NUMPY, True),
        }.items():
            seconds, fingerprints = _sweep(problems, numpy_mode, batched)
            best[mode] = min(best[mode], seconds)
            previous = prints.setdefault(mode, fingerprints)
            assert previous == fingerprints, f"{mode}: sweep is not deterministic"

    for mode in ("numpy_seq", "numpy_batch"):
        assert prints[mode] == prints["pure_seq"], (
            f"{mode} diverged from the pure sequential reference"
        )

    # Solver-level stacked solve against the pure per-problem loop.
    batch = _random_mmkp_batch()
    solver_best = {"pure": float("inf"), "numpy": float("inf")}
    solver_results: dict[str, list] = {}
    for _ in range(repeats):
        for mode, numpy_mode in {"pure": False, "numpy": HAVE_NUMPY}.items():
            with solver_numpy_override(numpy_mode):
                started = time.perf_counter()
                solved = solve_lagrangian_many(batch)
                solver_best[mode] = min(
                    solver_best[mode], time.perf_counter() - started
                )
            fingerprints = [
                (
                    result.multipliers,
                    repr(result.dual_bound),
                    result.iterations,
                    result.solution.selection,
                    repr(result.solution.value),
                    result.solution.feasible,
                )
                for result in solved
            ]
            previous = solver_results.setdefault(mode, fingerprints)
            assert previous == fingerprints, f"solver {mode}: not deterministic"
    assert solver_results["numpy"] == solver_results["pure"], (
        "stacked dense solve diverged from the pure per-problem loop"
    )

    return {
        "activations": len(problems),
        "throughput_pure_per_s": round(len(problems) / best["pure_seq"], 2),
        "throughput_numpy_per_s": round(len(problems) / best["numpy_seq"], 2),
        "throughput_batched_per_s": round(len(problems) / best["numpy_batch"], 2),
        "activation_speedup": round(best["pure_seq"] / best["numpy_batch"], 3),
        "sequential_speedup": round(best["pure_seq"] / best["numpy_seq"], 3),
        "solver_batch": len(batch),
        "solver_batch_speedup": round(solver_best["pure"] / solver_best["numpy"], 3),
        "numpy": HAVE_NUMPY,
    }


@pytest.mark.skipif(not HAVE_NUMPY, reason="dense backend needs numpy")
def test_lr_vectorised_speedup():
    result = measure_lr_vectorised()
    print(
        f"\nMMKP-LR vectorised admission ({result['activations']} activations):\n"
        f"  pure sequential:  {result['throughput_pure_per_s']:8.1f}/s\n"
        f"  numpy sequential: {result['throughput_numpy_per_s']:8.1f}/s "
        f"({result['sequential_speedup']:.2f}x)\n"
        f"  numpy batched:    {result['throughput_batched_per_s']:8.1f}/s "
        f"({result['activation_speedup']:.2f}x)\n"
        f"  stacked solver:   {result['solver_batch_speedup']:.2f}x over "
        f"{result['solver_batch']} relaxations"
    )
    assert result["activation_speedup"] >= MIN_ACTIVATION_SPEEDUP, (
        f"batched dense admission is only {result['activation_speedup']:.2f}x "
        f"over the pure path (floor {MIN_ACTIVATION_SPEEDUP}x)"
    )
