"""E5 — Fig. 3: S-curves of relative energy consumption.

Prints the sorted per-test energy ratios of MMKP-LR and MMKP-MDF relative to
EX-MEM and the share of tests scheduled optimally.  Expected shape (paper):
the MMKP-MDF curve hugs 1.0 for most tests (69.6 % optimal) while the MMKP-LR
curve departs from 1.0 much earlier (9.0 % optimal) and reaches larger ratios.
"""

from repro.analysis import format_fig3_scurve
from repro.analysis.stats import geometric_mean

#: Optimal-schedule shares reported with Fig. 3 of the paper.
PAPER_OPTIMAL_SHARE = {"mmkp-mdf": 0.696, "mmkp-lr": 0.090}


def test_fig3_scurves(benchmark, suite_results, scale_note):
    """Print the regenerated S-curves and compare curve positions."""
    heuristics = ["mmkp-lr", "mmkp-mdf"]
    print(f"\nE5 — Fig. 3 S-curves of relative energy {scale_note}")
    print(format_fig3_scurve(suite_results, heuristics, "ex-mem", num_points=12))
    print("paper optimal-schedule share:", PAPER_OPTIMAL_SHARE)

    mdf_curve = suite_results.relative_energy_curve("mmkp-mdf", "ex-mem")
    lr_curve = suite_results.relative_energy_curve("mmkp-lr", "ex-mem")
    assert mdf_curve and lr_curve

    # Shape 1: MMKP-MDF schedules a larger share of tests optimally.
    mdf_share = suite_results.optimal_share("mmkp-mdf", "ex-mem")
    lr_share = suite_results.optimal_share("mmkp-lr", "ex-mem")
    print(f"optimal share: mmkp-mdf {mdf_share:.1%}, mmkp-lr {lr_share:.1%}")
    assert mdf_share >= lr_share

    # Shape 2: the MMKP-MDF curve lies below the MMKP-LR curve on (geometric)
    # average — the same ordering Fig. 3 shows.
    assert geometric_mean(mdf_curve) <= geometric_mean(lr_curve) + 1e-9

    # Benchmark: sorting/aggregating the curves is the analysis cost.
    benchmark(suite_results.relative_energy_curve, "mmkp-mdf", "ex-mem")
