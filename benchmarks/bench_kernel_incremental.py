"""repro.kernel — incremental arrival handling vs. seed full re-solves.

Drives one online runtime-manager trace at *high load* (large active sets,
~50 % admission) through the MMKP-MDF manager twice: once with the
incremental kernel (``REPRO_KERNEL=1``: prefix-resumable EDF packing,
monotone feasibility filtering, ledger-gated pruning, shared view slices)
and once on the seed full-re-solve path (``REPRO_KERNEL=0``).  Both runs
must produce bit-identical logs — the speedup is pure delta reuse.

Acceptance target of the repro.kernel refactor: **≥ 1.5× faster arrival
handling at high load**.  The measured ratio is machine-independent enough
to gate on (both paths run the same Python on the same host); the wall
times are not.

Scale knobs (environment):

* ``REPRO_BENCH_KERNEL_POINTS`` — operating points per application
  (default 16; more points mean deeper configuration probing per arrival).
* ``REPRO_BENCH_KERNEL_RATE`` — Poisson arrival rate (default 2.5; high
  load keeps many jobs active per activation).
* ``REPRO_BENCH_KERNEL_REQUESTS`` — trace length (default 300).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.dse import paper_operating_points, reduced_tables
from repro.kernel import kernel_override
from repro.platforms import odroid_xu4
from repro.runtime.manager import RuntimeManager
from repro.runtime.trace import poisson_trace
from repro.schedulers import MMKPMDFScheduler

#: The acceptance floor, minus measurement headroom for noisy CI hosts (the
#: checked-in BENCH_RESULTS.json records the actual ratio, ~1.7x locally).
MIN_SPEEDUP = 1.35


def _setup():
    platform = odroid_xu4()
    points = int(os.environ.get("REPRO_BENCH_KERNEL_POINTS", "16"))
    rate = float(os.environ.get("REPRO_BENCH_KERNEL_RATE", "2.5"))
    requests = int(os.environ.get("REPRO_BENCH_KERNEL_REQUESTS", "300"))
    tables = reduced_tables(paper_operating_points(platform), max_points=points)
    trace = poisson_trace(tables, arrival_rate=rate, num_requests=requests, seed=2020)
    return platform, tables, trace


def _best_run_time(platform, tables, trace, kernel_on: bool, repeats: int = 3):
    best = float("inf")
    log = None
    with kernel_override(kernel_on):
        for _ in range(repeats):
            manager = RuntimeManager.from_components(
                platform, tables, MMKPMDFScheduler()
            )
            started = time.perf_counter()
            log = manager.run(trace)
            best = min(best, time.perf_counter() - started)
    return best, log


def log_fingerprint(log):
    return (
        repr(log.total_energy),
        log.activations,
        tuple(
            (o.name, o.accepted, repr(o.completion_time)) for o in log.outcomes
        ),
        tuple(
            (repr(i.start), repr(i.end), repr(i.energy), i.job_configs)
            for i in log.timeline
        ),
    )


def test_kernel_incremental_arrival_handling(benchmark):
    platform, tables, trace = _setup()

    kernel_s, kernel_log = _best_run_time(platform, tables, trace, True)
    seed_s, seed_log = _best_run_time(platform, tables, trace, False)

    # The speedup must be pure reuse: bit-identical logs or it does not count.
    assert log_fingerprint(kernel_log) == log_fingerprint(seed_log)

    arrivals = len(trace)
    speedup = seed_s / kernel_s
    print(
        f"\nrepro.kernel incremental arrival handling "
        f"({arrivals} arrivals, acceptance {kernel_log.acceptance_rate:.0%}):"
    )
    print(
        f"  kernel: {kernel_s * 1e3:7.1f} ms  "
        f"({arrivals / kernel_s:7.0f} arrivals/s)"
    )
    print(
        f"  seed:   {seed_s * 1e3:7.1f} ms  "
        f"({arrivals / seed_s:7.0f} arrivals/s)"
    )
    print(f"  speedup: {speedup:.2f}x (target >= 1.5x, floor {MIN_SPEEDUP}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"incremental kernel only {speedup:.2f}x faster than the seed path "
        f"(floor {MIN_SPEEDUP}x)"
    )

    # Benchmark fixture: one full kernel-mode run for the timing report.
    def run_kernel():
        with kernel_override(True):
            return RuntimeManager.from_components(
                platform, tables, MMKPMDFScheduler()
            ).run(trace)

    benchmark(run_kernel)


def test_kernel_delta_share_is_substantial():
    """At high load most placements must come from resumed prefixes."""
    from repro.api.events import RunEventKind

    platform, tables, trace = _setup()
    events = []
    with kernel_override(True):
        RuntimeManager.from_components(platform, tables, MMKPMDFScheduler()).run(
            trace, observer=events.append
        )
    summary = next(e for e in events if e.kind is RunEventKind.KERNEL).data
    print(
        f"\n  delta share: {summary['delta_share']:.1%} of "
        f"{summary['resumed_steps'] + summary['replayed_steps']} placements "
        f"resumed; {summary['prunes_skipped']} prune scans gated out"
    )
    assert summary["delta_share"] >= 0.25
