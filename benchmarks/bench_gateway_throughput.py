"""E11 — gateway throughput: warm runs/sec through the network daemon.

Measures how fast the scheduler-as-a-service daemon (:mod:`repro.gateway`)
turns submissions into finished runs when its per-tenant caches are warm —
the steady state of a long-running deployment serving repeat workloads:

* an **in-process** reference: ``Session.run()`` in a plain loop, the upper
  bound no daemon can beat;
* the **gateway warm** path: concurrent blocking clients each driving
  submit → wait over real sockets against one named, warm session.

The acceptance bar of the gateway subsystem is **≥ 50 finished runs/sec
warm** (an absolute floor: the daemon must keep interactive latencies on the
motivational workload, not add an order of magnitude of HTTP overhead).
Correctness before speed: every run — remote or in-process — must produce
the same deterministic result fingerprint.

``run_all.py`` imports :func:`measure_gateway_throughput` directly so the
gated CI metric and this pytest benchmark can never drift apart.
"""

import threading
import time

from repro.api import ExperimentSpec, SchedulerSpec, Session, WorkloadSpec

#: Finished runs measured per configuration (after warm-up).
MEASURE_RUNS = 120
#: Concurrent blocking clients (the acceptance criterion demands >= 8).
CLIENTS = 8
#: Warm-up submissions before the clock starts (cache fill + JIT imports).
WARMUP_RUNS = 8
#: The absolute floor the gate enforces (runs/sec, warm).
MIN_RUNS_PER_S = 50.0


def _bench_spec() -> ExperimentSpec:
    """The motivational workload under the paper's headline scheduler."""
    return ExperimentSpec(
        name="bench-gateway",
        workload=WorkloadSpec.scenario("S1"),
        scheduler=SchedulerSpec(name="mmkp-mdf"),
    )


def _in_process_rate(spec: ExperimentSpec, runs: int) -> tuple[float, str]:
    """Runs/sec (and fingerprint) of a bare Session loop — the upper bound."""
    session = Session.from_spec(spec)
    fingerprint = session.run().fingerprint()  # warm-up + reference result
    started = time.perf_counter()
    for _ in range(runs):
        session.run()
    return runs / (time.perf_counter() - started), fingerprint


def measure_gateway_throughput(
    runs: int = MEASURE_RUNS, clients: int = CLIENTS
) -> dict:
    """Drive ``runs`` warm submissions through a live daemon; return metrics.

    Starts an :class:`InProcessGateway` on an ephemeral port, warms one
    named session, then lets ``clients`` concurrent blocking clients race
    through the measured submissions.  Every result fingerprint must match
    the in-process reference — throughput of wrong answers is worthless.
    """
    from repro.gateway.client import GatewayClient
    from repro.gateway.server import GatewayConfig, InProcessGateway

    spec = _bench_spec()
    in_process_rate, reference = _in_process_rate(spec, max(runs // 4, 10))

    config = GatewayConfig(
        port=0, max_concurrent=clients, max_per_tenant=clients
    )
    with InProcessGateway(config) as gateway:
        warm_client = GatewayClient(gateway.base_url)
        for _ in range(WARMUP_RUNS):
            status = warm_client.run(spec, session="bench-warm")
            assert status["result"]["fingerprint"] == reference

        remaining = [runs]
        fingerprints: list[str] = []
        lock = threading.Lock()
        errors: list[BaseException] = []

        def one_client() -> None:
            client = GatewayClient(gateway.base_url)
            try:
                while True:
                    with lock:
                        if remaining[0] <= 0:
                            return
                        remaining[0] -= 1
                    status = client.run(spec, session="bench-warm")
                    with lock:
                        fingerprints.append(status["result"]["fingerprint"])
            except BaseException as error:  # surfaced by the caller
                errors.append(error)

        threads = [
            threading.Thread(target=one_client, name=f"bench-client-{index}")
            for index in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

    if errors:
        raise errors[0]
    assert len(fingerprints) == runs
    assert set(fingerprints) == {reference}, "remote results diverged"
    return {
        "runs": runs,
        "clients": clients,
        "runs_per_s_warm": round(runs / elapsed, 1),
        "runs_per_s_in_process": round(in_process_rate, 1),
        "gateway_efficiency": round((runs / elapsed) / in_process_rate, 3),
        "fingerprint": reference,
    }


def test_gateway_throughput():
    metrics = measure_gateway_throughput()
    print(
        f"\nE11 — gateway throughput ({metrics['clients']} concurrent "
        f"clients, {metrics['runs']} warm runs)"
    )
    print(f"{'configuration':28s} {'runs/s':>10s}")
    print(f"{'in-process Session loop':28s} {metrics['runs_per_s_in_process']:10.1f}")
    print(f"{'gateway (warm session)':28s} {metrics['runs_per_s_warm']:10.1f}")
    print(f"gateway/in-process efficiency: {metrics['gateway_efficiency']:.1%}")
    assert metrics["runs_per_s_warm"] >= MIN_RUNS_PER_S, (
        f"gateway sustained {metrics['runs_per_s_warm']:.1f} runs/s warm, "
        f"below the {MIN_RUNS_PER_S:.0f}/s floor"
    )
