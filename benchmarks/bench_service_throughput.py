"""E10 — batch-simulation service throughput (traces/sec).

Measures how fast :class:`~repro.service.pool.SimulationService` pushes a
repeated-sweep workload (the shape that dominates parameter studies: the same
trace seeds re-simulated across repeats and schedulers) through the runtime
manager, comparing

* one worker without the activation cache (the seed's one-trace-at-a-time
  baseline),
* one worker with the cache (repeated activations solved once),
* ``--workers``/``REPRO_BENCH_WORKERS`` workers with a shared cache.

The acceptance bar of the service subsystem is a ≥ 2× traces/sec improvement
from cache + fan-out on this workload; the cache alone typically clears it
(hit rate ≈ 1 − 1/repeats).  All configurations must simulate every trace
without failures, and the cached runs must be bit-identical to each other
regardless of worker count.
"""

import time

from repro.service import BatchSpec, SimulationService

#: Repeated-sweep workload: distinct trace seeds × repeats.
ARRIVAL_RATES = (0.15, 0.3)
TRACES_PER_POINT = 5
NUM_REQUESTS = 12
REPEATS = 8


def _sweep() -> BatchSpec:
    return BatchSpec.sweep(
        arrival_rates=ARRIVAL_RATES,
        schedulers=["mmkp-mdf"],
        traces_per_point=TRACES_PER_POINT,
        num_requests=NUM_REQUESTS,
        repeats=REPEATS,
        name="throughput",
    )


def _timed(service: SimulationService, spec: BatchSpec):
    start = time.perf_counter()
    results = service.run_batch(spec)
    elapsed = time.perf_counter() - start
    assert results.failures == [], [f.error for f in results.failures]
    return results, elapsed


def test_service_throughput(bench_workers):
    spec = _sweep()
    print(
        f"\nE10 — service throughput on a repeated sweep "
        f"({len(spec)} traces = {len(ARRIVAL_RATES)} rates × "
        f"{TRACES_PER_POINT} seeds × {REPEATS} repeats, "
        f"{NUM_REQUESTS} requests each)"
    )

    baseline = SimulationService(workers=1, use_cache=False)
    _, baseline_time = _timed(baseline, spec)

    cached = SimulationService(workers=1, use_cache=True)
    cached_results, cached_time = _timed(cached, spec)

    fanout = SimulationService(workers=bench_workers, executor="thread", use_cache=True)
    fanout_results, fanout_time = _timed(fanout, spec)

    rows = [
        ("1 worker, cache off", baseline_time, 1.0),
        ("1 worker, cache on", cached_time, baseline_time / cached_time),
        (
            f"{bench_workers} workers, cache on",
            fanout_time,
            baseline_time / fanout_time,
        ),
    ]
    print(f"{'configuration':28s} {'time':>9s} {'traces/s':>10s} {'speedup':>9s}")
    for label, elapsed, speedup in rows:
        print(
            f"{label:28s} {elapsed:8.3f}s {len(spec) / elapsed:10.1f} "
            f"{speedup:8.2f}x"
        )
    hit_rate = cached.cache.info()["hit_rate"]
    print(f"activation cache hit rate: {hit_rate:.1%}")

    # Correctness before speed: caching is deterministic and fan-out-invariant.
    assert cached_results.fingerprint() == fanout_results.fingerprint()
    assert hit_rate > 0.5, "repeated sweep should mostly hit the cache"
    # The headline claim: cache (+ fan-out) buys at least 2× on this workload.
    best = max(baseline_time / cached_time, baseline_time / fanout_time)
    assert best >= 2.0, f"expected ≥2x traces/sec, got {best:.2f}x"
