"""E10 — batch-simulation service throughput (traces/sec).

Measures how fast :class:`~repro.service.pool.SimulationService` pushes a
repeated-sweep workload (the shape that dominates parameter studies: the same
trace seeds re-simulated across repeats and schedulers) through the runtime
manager, comparing

* one worker without the activation cache on the seed's list-based scheduler
  path (the historical baseline the service's ≥2× bar was set against),
* one worker without the cache on today's columnar ``repro.optable`` path,
* one worker with the cache (repeated activations solved once),
* ``--workers``/``REPRO_BENCH_WORKERS`` workers with a shared cache.

The acceptance bar of the service subsystem is a ≥ 2× traces/sec improvement
of cache + fan-out over the seed baseline.  Since the ``repro.optable``
refactor the *uncached* scheduler is itself ≥2× faster, so most of that
margin now comes from the kernel and the cache compresses the remainder; the
cache must still never lose throughput.  All configurations must simulate
every trace without failures, and every run — cached or not, columnar or
list — must produce bit-identical batch fingerprints.
"""

import time

from repro.optable import columnar_disabled
from repro.service import BatchSpec, SimulationService

#: Repeated-sweep workload: distinct trace seeds × repeats.
ARRIVAL_RATES = (0.15, 0.3)
TRACES_PER_POINT = 5
NUM_REQUESTS = 12
REPEATS = 8


def _sweep() -> BatchSpec:
    return BatchSpec.sweep(
        arrival_rates=ARRIVAL_RATES,
        schedulers=["mmkp-mdf"],
        traces_per_point=TRACES_PER_POINT,
        num_requests=NUM_REQUESTS,
        repeats=REPEATS,
        name="throughput",
    )


def _timed(service: SimulationService, spec: BatchSpec):
    start = time.perf_counter()
    results = service.run_batch(spec)
    elapsed = time.perf_counter() - start
    assert results.failures == [], [f.error for f in results.failures]
    return results, elapsed


def test_service_throughput(bench_workers):
    spec = _sweep()
    print(
        f"\nE10 — service throughput on a repeated sweep "
        f"({len(spec)} traces = {len(ARRIVAL_RATES)} rates × "
        f"{TRACES_PER_POINT} seeds × {REPEATS} repeats, "
        f"{NUM_REQUESTS} requests each)"
    )

    with columnar_disabled():
        seed_results, seed_time = _timed(
            SimulationService(workers=1, use_cache=False), spec
        )

    baseline = SimulationService(workers=1, use_cache=False)
    baseline_results, baseline_time = _timed(baseline, spec)

    cached = SimulationService(workers=1, use_cache=True)
    cached_results, cached_time = _timed(cached, spec)

    fanout = SimulationService(workers=bench_workers, executor="thread", use_cache=True)
    fanout_results, fanout_time = _timed(fanout, spec)

    rows = [
        ("1 worker, list path", seed_time, 1.0),
        ("1 worker, cache off", baseline_time, seed_time / baseline_time),
        ("1 worker, cache on", cached_time, seed_time / cached_time),
        (
            f"{bench_workers} workers, cache on",
            fanout_time,
            seed_time / fanout_time,
        ),
    ]
    print(f"{'configuration':28s} {'time':>9s} {'traces/s':>10s} {'speedup':>9s}")
    for label, elapsed, speedup in rows:
        print(
            f"{label:28s} {elapsed:8.3f}s {len(spec) / elapsed:10.1f} "
            f"{speedup:8.2f}x"
        )
    hit_rate = cached.cache.info()["hit_rate"]
    print(f"activation cache hit rate: {hit_rate:.1%}")

    # Correctness before speed: the columnar path is bit-identical to the
    # seed list path, and caching is deterministic and fan-out-invariant.
    # (Cached and uncached runs differ in per-result activation accounting by
    # design, so only like-for-like configurations are compared.)
    assert baseline_results.fingerprint() == seed_results.fingerprint()
    assert cached_results.fingerprint() == fanout_results.fingerprint()
    assert hit_rate > 0.5, "repeated sweep should mostly hit the cache"
    # The headline claim: columnar kernel + cache (+ fan-out) buys at least
    # 2× traces/sec over the seed baseline, and the cache never loses
    # throughput against the uncached columnar path.
    best = max(seed_time / cached_time, seed_time / fanout_time)
    assert best >= 2.0, f"expected ≥2x traces/sec, got {best:.2f}x"
    # Generous margin: these are two single wall-clock samples on a possibly
    # noisy host; the assertion only catches a cache that *costs* real
    # throughput, not run-to-run jitter.
    assert cached_time <= baseline_time * 1.5, (
        f"cache lost throughput: {cached_time:.3f}s vs {baseline_time:.3f}s uncached"
    )
