"""E12 — persistent store and sharded execution: warm reruns and scaling.

Two measurements for the ``repro.store`` + ``repro.cluster`` subsystems:

* **Warm-store rerun** — a census batch under MMKP-LR (the solve-dominated
  configuration: every activation pays a Lagrangian iteration) is run twice
  against the same on-disk SQLite store.  The first run fills the store;
  the second serves every activation and solve from it.  The acceptance bar
  is **> 5x** — a warm rerun must skip essentially all scheduling work —
  and the two fingerprints must be identical (a cache that changes answers
  is not a cache).

* **Cluster scaling** — the same class of batch through the
  ``ShardCoordinator``-backed ``executor="cluster"`` at ``workers=1`` and
  ``workers=min(4, cpu_count)``.  The gate is **core efficiency ≥ 0.55**:
  speedup divided by the *available* parallelism ``min(workers, cpus)``, so
  a single-core CI host gates "no pathological overhead" while a multi-core
  host gates near-linear scaling.

``run_all.py`` imports :func:`measure_store_warm` and
:func:`measure_cluster_scaling` directly so the gated CI metrics and these
pytest benchmarks can never drift apart.  Scale knobs (smoke mode pins them
down): ``REPRO_BENCH_STORE_POINTS``, ``REPRO_BENCH_STORE_REQUESTS``,
``REPRO_BENCH_STORE_TRACES``.
"""

import os
import tempfile
import time
from pathlib import Path

from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import odroid_xu4
from repro.service import BatchSpec, SimulationService

#: The warm rerun must beat the cold run by at least this factor.
MIN_WARM_SPEEDUP = 5.0
#: Cluster speedup divided by available parallelism must stay above this.
MIN_CORE_EFFICIENCY = 0.55
#: Worker cap for the scaling measurement.
MAX_WORKERS = 4


def _scale() -> dict:
    return {
        "max_points": int(os.environ.get("REPRO_BENCH_STORE_POINTS", "8")),
        "num_requests": int(os.environ.get("REPRO_BENCH_STORE_REQUESTS", "25")),
        "traces_per_point": int(os.environ.get("REPRO_BENCH_STORE_TRACES", "2")),
    }


def _census_batch(name: str, arrival_rates: list[float]) -> BatchSpec:
    """A solve-dominated census batch: MMKP-LR over reduced paper tables."""
    scale = _scale()
    platform = odroid_xu4()
    tables = reduced_tables(
        paper_operating_points(platform), max_points=scale["max_points"]
    )
    return BatchSpec.sweep(
        arrival_rates=arrival_rates,
        schedulers=("mmkp-lr",),
        traces_per_point=scale["traces_per_point"],
        num_requests=scale["num_requests"],
        base_seed=9,
        platform=platform,
        tables=tables,
        name=name,
    )


def measure_store_warm() -> dict:
    """Cold-vs-warm wall times of one census batch against one SQLite store."""
    spec = _census_batch("bench-store-warm", [1.5, 2.5])
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "bench-store.db")

        started = time.perf_counter()
        cold_fingerprint = SimulationService(store=path).run_batch(spec).fingerprint()
        cold_s = time.perf_counter() - started

        warm_service = SimulationService(store=path)
        started = time.perf_counter()
        warm_fingerprint = warm_service.run_batch(spec).fingerprint()
        warm_s = time.perf_counter() - started

        counters = warm_service.store.counters()
        store_hits = sum(kind["hits"] for kind in counters.values())
    assert warm_fingerprint == cold_fingerprint, "warm rerun changed the answers"
    assert store_hits > 0, "warm rerun never touched the store"
    return {
        "jobs": len(spec.jobs),
        "scale": _scale(),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
        "warm_store_hits": store_hits,
        "fingerprint": cold_fingerprint,
    }


def measure_cluster_scaling() -> dict:
    """Cluster-executor wall times at ``workers=1`` vs ``workers=N``.

    Both configurations pay the same process-pool start-up, so the ratio
    isolates the coordinator's dispatch/steal overhead and the host's real
    parallelism.
    """
    spec = _census_batch("bench-cluster-scaling", [1.5, 2.0, 2.5, 3.0])
    cpus = os.cpu_count() or 1
    workers = min(MAX_WORKERS, max(2, cpus))
    timings = {}
    fingerprints = {}
    for count in (1, workers):
        service = SimulationService(workers=count, executor="cluster")
        started = time.perf_counter()
        fingerprints[count] = service.run_batch(spec).fingerprint()
        timings[count] = time.perf_counter() - started
        assert service.cluster_stats.failed_units == 0
    assert fingerprints[1] == fingerprints[workers], "worker count changed answers"
    speedup = timings[1] / timings[workers]
    available = min(workers, cpus)
    return {
        "jobs": len(spec.jobs),
        "scale": _scale(),
        "cpus": cpus,
        "workers": workers,
        "serial_s": round(timings[1], 4),
        "parallel_s": round(timings[workers], 4),
        "speedup": round(speedup, 3),
        "available_parallelism": available,
        "core_efficiency": round(speedup / available, 3),
        "fingerprint": fingerprints[1],
    }


def test_store_warm_rerun():
    metrics = measure_store_warm()
    print(
        f"\nE12 — warm-store rerun ({metrics['jobs']} census jobs, "
        f"{metrics['scale']['max_points']}-point tables)"
    )
    print(f"{'configuration':24s} {'wall time':>12s}")
    print(f"{'cold (fills store)':24s} {metrics['cold_s']:11.3f}s")
    print(f"{'warm (serves store)':24s} {metrics['warm_s']:11.3f}s")
    print(f"warm speedup: {metrics['speedup']:.1f}x "
          f"({metrics['warm_store_hits']} store hits)")
    assert metrics["speedup"] > MIN_WARM_SPEEDUP, (
        f"warm rerun only {metrics['speedup']:.1f}x over cold, "
        f"below the {MIN_WARM_SPEEDUP:.0f}x floor"
    )


def test_cluster_scaling():
    metrics = measure_cluster_scaling()
    print(
        f"\nE12 — cluster scaling ({metrics['jobs']} census jobs, "
        f"{metrics['cpus']} cpus)"
    )
    print(f"{'configuration':24s} {'wall time':>12s}")
    print(f"{'workers=1':24s} {metrics['serial_s']:11.3f}s")
    label = f"workers={metrics['workers']}"
    print(f"{label:24s} {metrics['parallel_s']:11.3f}s")
    print(
        f"speedup {metrics['speedup']:.2f}x over "
        f"{metrics['available_parallelism']} available cores "
        f"(efficiency {metrics['core_efficiency']:.0%})"
    )
    assert metrics["core_efficiency"] >= MIN_CORE_EFFICIENCY, (
        f"core efficiency {metrics['core_efficiency']:.2f} fell below "
        f"{MIN_CORE_EFFICIENCY:.2f} (speedup {metrics['speedup']:.2f}x over "
        f"{metrics['available_parallelism']} available cores)"
    )
