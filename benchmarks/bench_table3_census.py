"""E2 — Table III: the evaluation workload census.

Regenerates the full 1676-test workload with the Section VI.A recipe and
prints the census in the layout of Table III.  The paper's exact bucket counts
are used as the generation census, so the reproduced table matches the paper
by construction; the interesting checks are the statistical shares (single
application mixes, initial-state jobs) that the recipe must reproduce.
"""

import pytest

from repro.analysis import format_table_iii
from repro.workload import EvaluationSuite
from repro.workload.suite import TOTAL_TEST_CASES, table_iii_census
from repro.workload.testgen import (
    INITIAL_STATE_SHARE,
    SINGLE_APPLICATION_SHARE,
    TestCaseGenerator,
)

#: Paper values of Table III for the printed comparison.
PAPER_TABLE_III = {
    ("weak", 1): 15, ("weak", 2): 255, ("weak", 3): 255, ("weak", 4): 230,
    ("tight", 1): 35, ("tight", 2): 340, ("tight", 3): 340, ("tight", 4): 206,
}


def test_table3_census(benchmark, bench_tables):
    """Generate the full workload, print Table III and check its statistics."""
    suite = EvaluationSuite.generate(bench_tables, table_iii_census(), seed=2020)
    print("\nE2 — Table III (paper census regenerated exactly)")
    print(format_table_iii(suite))
    print(
        f"single-application share: paper ~{SINGLE_APPLICATION_SHARE:.1%}, "
        f"measured {suite.single_application_share():.1%}"
    )
    print(
        f"all-initial-state share: paper ~{INITIAL_STATE_SHARE:.1%}, "
        f"measured {suite.initial_state_share():.1%}"
    )

    assert len(suite) == TOTAL_TEST_CASES == sum(PAPER_TABLE_III.values())
    census = suite.census()
    for (level, jobs), count in census.items():
        assert PAPER_TABLE_III[(level.value, jobs)] == count
    # The statistical shares of Section VI.A are reproduced within tolerance
    # (the initial-state share also picks up single-job cases that are always
    # generated in their initial state).
    assert suite.single_application_share() == pytest.approx(
        SINGLE_APPLICATION_SHARE, abs=0.06
    )
    assert suite.initial_state_share() >= INITIAL_STATE_SHARE - 0.05

    # Benchmark: generating one 4-job tight-deadline test case.
    generator = TestCaseGenerator(bench_tables, seed=1)
    from repro.workload.testgen import DeadlineLevel

    benchmark(generator.generate_case, 4, DeadlineLevel.TIGHT)
