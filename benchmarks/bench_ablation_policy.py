"""Ablation A1 — the MDF job-selection policy.

Algorithm 1 selects the next job with Maximum Difference First.  This ablation
replaces MDF with simpler orders (arrival order, earliest deadline, minimum
laxity) while keeping the rest of the heuristic identical, and reports the
effect on scheduling rate and energy.  It substantiates the design choice
called out in DESIGN.md Section 5.
"""

from repro.analysis import evaluate_suite
from repro.analysis.stats import geometric_mean
from repro.schedulers import MMKPMDFScheduler
from repro.schedulers.policies import (
    ArrivalOrderPolicy,
    EarliestDeadlinePolicy,
    MaximumDifferencePolicy,
    MinimumLaxityPolicy,
)
from repro.workload.testgen import DeadlineLevel


def test_ablation_job_selection_policy(
    benchmark, bench_suite, platform, bench_tables, scale_note
):
    """Compare MDF against simpler job orders on the same workload."""
    policies = {
        "mdf": MaximumDifferencePolicy(),
        "edf-order": EarliestDeadlinePolicy(),
        "arrival": ArrivalOrderPolicy(),
        "laxity": MinimumLaxityPolicy(),
    }
    schedulers = []
    for label, policy in policies.items():
        scheduler = MMKPMDFScheduler(policy=policy)
        scheduler.name = f"mdf[{label}]"
        schedulers.append(scheduler)

    results = evaluate_suite(bench_suite, platform, bench_tables, schedulers)

    print(f"\nA1 — job-selection policy ablation {scale_note}")
    print(f"{'policy':16s} {'tight rate@max jobs':>20s} {'mean energy':>14s} {'cases':>7s}")
    summary = {}
    for scheduler in schedulers:
        runs = [r for r in results.runs_of(scheduler.name) if r.feasible]
        rates = results.scheduling_rate(scheduler.name, DeadlineLevel.TIGHT)
        largest = max(rates) if rates else 0
        mean_energy = geometric_mean([r.energy for r in runs]) if runs else float("nan")
        summary[scheduler.name] = (rates.get(largest, 0.0), mean_energy, len(runs))
        print(
            f"{scheduler.name:16s} {rates.get(largest, 0.0):19.1f}% "
            f"{mean_energy:14.3f} {len(runs):7d}"
        )

    # The MDF policy must schedule at least as many cases as the naive
    # arrival-order policy (it was designed to avoid throwing away critical
    # configurations early).
    assert summary["mdf[mdf]"][2] >= summary["mdf[arrival]"][2] - 1

    # Benchmark one MDF-policy activation for reference.
    cases = bench_suite.filtered(DeadlineLevel.TIGHT, 3) or bench_suite.cases
    problem = cases[0].problem(platform, bench_tables)
    benchmark(MMKPMDFScheduler().schedule, problem)
