"""Ablation A2 — sensitivity to the operating-point table size.

The runtime manager consumes Pareto tables produced at design time; their size
trades scheduling quality against runtime overhead.  This ablation sweeps the
per-application table-size cap and reports MMKP-MDF's scheduling rate, energy
and overhead for each cap, quantifying the cost of the EX-MEM-motivated table
reduction documented in EXPERIMENTS.md.
"""

from repro.analysis import evaluate_suite
from repro.analysis.stats import geometric_mean
from repro.dse import reduced_tables
from repro.schedulers import MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census
from repro.workload.testgen import DeadlineLevel

#: Table-size caps swept by the ablation.
CAPS = (2, 4, 8, 16)


def test_ablation_table_size(benchmark, full_tables, platform, scale_note):
    """Sweep the operating-point cap and report quality/overhead."""
    print(f"\nA2 — operating-point table size ablation {scale_note}")
    print(f"{'cap':>4s} {'avg points':>11s} {'sched rate':>11s} {'geomean energy':>15s} {'mean time [ms]':>15s}")

    baseline_energy = None
    rows = []
    for cap in CAPS:
        tables = reduced_tables(full_tables, max_points=cap)
        suite = EvaluationSuite.generate(tables, scaled_census(0.02), seed=99)
        results = evaluate_suite(suite, platform, tables, [MMKPMDFScheduler()])
        runs = results.runs_of("mmkp-mdf")
        feasible = [r for r in runs if r.feasible]
        rate = 100.0 * len(feasible) / len(runs)
        energy = geometric_mean([r.energy for r in feasible]) if feasible else float("nan")
        mean_time = sum(r.search_time for r in runs) / len(runs)
        average_points = sum(len(t) for t in tables.values()) / len(tables)
        rows.append((cap, average_points, rate, energy, mean_time))
        print(
            f"{cap:4d} {average_points:11.1f} {rate:10.1f}% {energy:15.3f} "
            f"{mean_time * 1000:15.3f}"
        )
        if baseline_energy is None:
            baseline_energy = energy

    # Larger tables should not noticeably hurt the scheduling rate (they give
    # the heuristic strictly more options; small fluctuations are sampling
    # noise on the reduced workload)...
    assert rows[-1][2] >= rows[0][2] - 10.0
    # ...and they cost more scheduling time than the smallest cap.
    assert rows[-1][4] >= rows[0][4] * 0.5

    # Benchmark an activation with the largest cap (the most expensive case).
    tables = reduced_tables(full_tables, max_points=CAPS[-1])
    suite = EvaluationSuite.generate(tables, scaled_census(0.01), seed=5)
    problem = suite.filtered(DeadlineLevel.TIGHT, 4)[0].problem(platform, tables)
    benchmark(MMKPMDFScheduler().schedule, problem)
