#!/usr/bin/env python
"""Run every benchmark and write a machine-readable ``BENCH_RESULTS.json``.

The perf trajectory of this repository was previously untracked: each
``bench_*.py`` printed its figures and the numbers evaporated with the
terminal.  This runner

1. executes every ``benchmarks/bench_*.py`` in **one** pytest session (the
   expensive workload/table fixtures are session-scoped, so sharing the
   session costs a fraction of running the files separately), recording the
   wall time of every benchmark test;
2. measures the headline kernel metrics directly — scheduler activation
   throughput on the census workload for the columnar ``repro.optable`` path
   *and* the seed list path (the ratio is the machine-independent speedup the
   acceptance gate tracks), per-activation search times, the incremental
   ``repro.kernel`` arrival-handling ratio against the seed full-re-solve
   path (``REPRO_KERNEL=0``), and the Pareto engine against the seed's
   O(n²) reference;
3. writes everything to ``BENCH_RESULTS.json`` (name → wall time, throughput,
   key metric) next to this file, or to ``--output``.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full configured scale
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # quick CI scale
    PYTHONPATH=src python benchmarks/run_all.py --smoke --check-baseline

``--check-baseline`` compares the scheduling-rate speedup against the
checked-in ``BENCH_BASELINE.json`` and exits non-zero on a regression beyond
the allowed fraction (default 25 %) — wall times are host-specific, so the
gate tracks the columnar/list *ratio*, which is not.

The checked-in ``BENCH_RESULTS.json`` is the reference snapshot of the last
accepted perf-relevant change (its ``meta`` section names the host).  Local
or CI runs overwrite it in the worktree by design — that diff *is* the perf
trajectory; commit the refresh only alongside perf-relevant changes, or pass
``--output`` elsewhere to keep the tree clean.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_OUTPUT = BENCH_DIR / "BENCH_RESULTS.json"
BASELINE_PATH = BENCH_DIR / "BENCH_BASELINE.json"

#: Environment overrides applied by ``--smoke`` (CI-friendly scale).  The
#: census fraction and table cap stay at the documented defaults: the Fig. 3
#: shape assertion needs the 8-point tables (6-point tables flip the
#: MDF-vs-LR optimal-share ordering at tiny scale — a workload property, not
#: a perf one), so smoke mode only pins the worker count and the benchmark
#: repeat count down.
SMOKE_ENV = {
    "REPRO_BENCH_FRACTION": "0.05",
    "REPRO_BENCH_MAX_POINTS": "8",
    "REPRO_BENCH_WORKERS": "2",
    "REPRO_BENCH_STORE_POINTS": "6",
    "REPRO_BENCH_STORE_REQUESTS": "10",
    "REPRO_BENCH_SWEEP_FRACTION": "0.005",
}


class _TimingPlugin:
    """Collect per-test wall times and outcomes from one pytest session."""

    def __init__(self):
        self.tests: dict[str, dict] = {}

    def pytest_runtest_logreport(self, report):
        if report.when != "call":
            return
        entry = self.tests.setdefault(
            report.nodeid, {"wall_time_s": 0.0, "status": "ok"}
        )
        entry["wall_time_s"] += report.duration
        if report.failed:
            entry["status"] = "failed"
        elif report.skipped:
            entry["status"] = "skipped"


def run_pytest_benches(extra_args: list[str]) -> tuple[dict, int]:
    """Run every bench_*.py in one shared pytest session."""
    import pytest

    plugin = _TimingPlugin()
    files = sorted(str(path) for path in BENCH_DIR.glob("bench_*.py"))
    args = ["-q", "-p", "no:cacheprovider", *extra_args, *files]
    started = time.perf_counter()
    exit_code = pytest.main(args, plugins=[plugin])
    elapsed = time.perf_counter() - started

    per_file: dict[str, dict] = {}
    for nodeid, entry in plugin.tests.items():
        name = Path(nodeid.split("::", 1)[0]).stem
        bucket = per_file.setdefault(
            name, {"wall_time_s": 0.0, "tests": 0, "status": "ok"}
        )
        bucket["wall_time_s"] += entry["wall_time_s"]
        bucket["tests"] += 1
        if entry["status"] == "failed":
            bucket["status"] = "failed"
    for bucket in per_file.values():
        bucket["wall_time_s"] = round(bucket["wall_time_s"], 4)
    return (
        {"session_wall_time_s": round(elapsed, 3), "files": per_file},
        int(exit_code),
    )


def _census_problems():
    from repro.dse import paper_operating_points, reduced_tables
    from repro.platforms import odroid_xu4
    from repro.workload import EvaluationSuite
    from repro.workload.suite import scaled_census, table_iii_census

    fraction = float(os.environ.get("REPRO_BENCH_FRACTION", "0.05"))
    max_points = int(os.environ.get("REPRO_BENCH_MAX_POINTS", "8"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "2020"))
    platform = odroid_xu4()
    tables = reduced_tables(paper_operating_points(platform), max_points=max_points)
    census = table_iii_census() if fraction >= 1.0 else scaled_census(fraction)
    suite = EvaluationSuite.generate(tables, census, seed=seed)
    problems = [case.problem(platform, tables) for case in suite.cases]
    return problems, {"fraction": fraction, "max_points": max_points, "seed": seed}


def _throughput(scheduler_factory, problems, columnar: bool, repeats: int) -> float:
    """Best activations-per-second over ``repeats`` sweeps of the census."""
    from repro.optable import columnar_override

    best = float("inf")
    for _ in range(repeats):
        # A fresh scheduler per sweep: per-instance solve memos start cold.
        scheduler = scheduler_factory()
        with columnar_override(columnar):
            started = time.perf_counter()
            for problem in problems:
                scheduler.schedule(problem)
            best = min(best, time.perf_counter() - started)
    return len(problems) / best


def measure_kernel_metrics(repeats: int = 3) -> dict:
    """Direct columnar-vs-list measurements (the acceptance-gate numbers)."""
    from repro.optable import intern_info
    from repro.schedulers import MMKPLRScheduler, MMKPMDFScheduler

    problems, scale = _census_problems()
    metrics: dict = {"scale": scale, "census_cases": len(problems)}

    # Fig. 2 hot path: MMKP-MDF activation throughput over the census.
    schedulers = {
        "mmkp-mdf": MMKPMDFScheduler,
        "mmkp-lr": MMKPLRScheduler,
    }
    for name, factory in schedulers.items():
        columnar = _throughput(factory, problems, True, repeats)
        legacy = _throughput(factory, problems, False, repeats)
        metrics[f"scheduling_rate/{name}"] = {
            "throughput_columnar_per_s": round(columnar, 2),
            "throughput_list_per_s": round(legacy, 2),
            "columnar_speedup": round(columnar / legacy, 3),
            "mean_search_time_columnar_s": round(1.0 / columnar, 6),
            "mean_search_time_list_s": round(1.0 / legacy, 6),
        }

    # repro.kernel: incremental arrival handling against seed full re-solves.
    # Setup and measurement come from bench_kernel_incremental itself, so
    # the gated CI metric can never drift from the workload the pytest bench
    # records (same REPRO_BENCH_KERNEL_* knobs, same seed, same best-of-N).
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    import bench_kernel_incremental as kernel_bench

    platform, kernel_tables, kernel_trace = kernel_bench._setup()
    kernel_s, kernel_log = kernel_bench._best_run_time(
        platform, kernel_tables, kernel_trace, True, repeats=repeats
    )
    seed_s, seed_log = kernel_bench._best_run_time(
        platform, kernel_tables, kernel_trace, False, repeats=repeats
    )
    assert kernel_bench.log_fingerprint(kernel_log) == kernel_bench.log_fingerprint(
        seed_log
    ), "incremental kernel diverged from the seed path"
    metrics["kernel_incremental"] = {
        "arrivals": len(kernel_trace),
        "acceptance_rate": round(kernel_log.acceptance_rate, 3),
        "arrivals_per_s_kernel": round(len(kernel_trace) / kernel_s, 1),
        "arrivals_per_s_seed": round(len(kernel_trace) / seed_s, 1),
        "speedup": round(seed_s / kernel_s, 3),
        "scale": {
            "max_points": int(os.environ.get("REPRO_BENCH_KERNEL_POINTS", "16")),
            "arrival_rate": float(os.environ.get("REPRO_BENCH_KERNEL_RATE", "2.5")),
            "requests": int(os.environ.get("REPRO_BENCH_KERNEL_REQUESTS", "300")),
        },
    }

    # repro.obs: span-tracing overhead on the same kernel workload.  The
    # measurement (interleaved best-of-N, GC paused) lives in
    # bench_obs_overhead so the gated metric matches the pytest bench.
    import bench_obs_overhead as obs_bench

    overhead = obs_bench.measure_tracing_overhead(
        repeats=repeats, setup=(platform, kernel_tables, kernel_trace)
    )
    metrics["tracing_overhead"] = {
        "spans": overhead["spans"],
        "disabled_ms": round(overhead["disabled_s"] * 1e3, 1),
        "enabled_ms": round(overhead["enabled_s"] * 1e3, 1),
        "enabled_overhead": round(overhead["enabled_overhead"], 4),
    }

    # Fig. 4 companion: the Pareto engine against the seed's pairwise scan.
    from repro.dse.pareto import pareto_front, pareto_front_reference

    import random

    rng = random.Random(2020)
    sweep = [
        (
            float(rng.randrange(0, 5)),
            float(rng.randrange(0, 9)),
            rng.random() * 10.0,
            rng.random() * 30.0,
        )
        for _ in range(1500)
    ]
    started = time.perf_counter()
    fast = pareto_front(sweep, objectives=lambda p: p)
    fast_s = time.perf_counter() - started
    started = time.perf_counter()
    reference = pareto_front_reference(sweep, objectives=lambda p: p)
    reference_s = time.perf_counter() - started
    assert fast == reference, "Pareto engine diverged from the reference"
    metrics["pareto_front"] = {
        "points": len(sweep),
        "front_size": len(fast),
        "engine_s": round(fast_s, 5),
        "reference_s": round(reference_s, 5),
        "speedup": round(reference_s / fast_s, 2) if fast_s > 0 else float("inf"),
    }
    metrics["optable_intern"] = intern_info()

    # repro.gateway: warm runs/sec through the network daemon.  Measurement
    # lives in bench_gateway_throughput so the gated CI metric is exactly
    # what the pytest bench asserts (same spec, same warm-up, same clients).
    import bench_gateway_throughput as gateway_bench

    metrics["gateway_throughput"] = gateway_bench.measure_gateway_throughput()

    # repro.store + repro.cluster: warm-store rerun speedup and cluster
    # core efficiency.  Measurements live in bench_store_warm so the gated
    # CI metrics are exactly what the pytest benches assert.
    import bench_store_warm as store_bench

    metrics["store_warm"] = store_bench.measure_store_warm()
    metrics["cluster_scaling"] = store_bench.measure_cluster_scaling()

    # repro.dse.sweep: planner dedupe + cross-point batched solves against
    # the per-point serial path.  Measurement lives in bench_dse_sweep so
    # the gated CI metric is exactly what the pytest bench asserts.
    import bench_dse_sweep as sweep_bench

    metrics["dse_sweep"] = sweep_bench.measure_dse_sweep()

    # repro.knapsack._dense: batched numpy MMKP-LR admission vs the pure
    # sequential reference (REPRO_SOLVER_NUMPY=1 vs =0).  Measurement lives
    # in bench_lr_vectorised so the gated metric matches the pytest bench.
    import bench_lr_vectorised as lr_bench

    metrics["lr_vectorised"] = lr_bench.measure_lr_vectorised(repeats=repeats)
    return metrics


def check_baseline(results: dict, tolerance: float) -> list[str]:
    """Compare the recorded speedup ratios against the checked-in baseline."""
    if not BASELINE_PATH.exists():
        return [f"baseline file {BASELINE_PATH} is missing"]
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = []
    for name, expected in baseline.get("scheduling_rate", {}).items():
        entry = results["metrics"].get(f"scheduling_rate/{name}")
        if entry is None:
            failures.append(f"scheduling_rate/{name}: missing from results")
            continue
        floor = expected["columnar_speedup"] * (1.0 - tolerance)
        actual = entry["columnar_speedup"]
        if actual < floor:
            failures.append(
                f"scheduling_rate/{name}: columnar speedup {actual:.3f} fell "
                f"below {floor:.3f} (baseline {expected['columnar_speedup']:.3f} "
                f"- {tolerance:.0%})"
            )
    expected = baseline.get("gateway_throughput")
    if expected is not None:
        entry = results["metrics"].get("gateway_throughput")
        if entry is None:
            failures.append("gateway_throughput: missing from results")
        else:
            # An absolute floor, not a ratio: the subsystem's acceptance
            # criterion is ">= 50 finished runs/sec warm" on any host.
            floor = expected["min_runs_per_s"]
            if entry["runs_per_s_warm"] < floor:
                failures.append(
                    f"gateway_throughput: {entry['runs_per_s_warm']:.1f} "
                    f"runs/s warm fell below the absolute {floor:.0f}/s floor"
                )
    expected = baseline.get("kernel_incremental")
    if expected is not None:
        entry = results["metrics"].get("kernel_incremental")
        if entry is None:
            failures.append("kernel_incremental: missing from results")
        else:
            floor = expected["speedup"] * (1.0 - tolerance)
            if entry["speedup"] < floor:
                failures.append(
                    f"kernel_incremental: arrival-handling speedup "
                    f"{entry['speedup']:.3f} fell below {floor:.3f} "
                    f"(baseline {expected['speedup']:.3f} - {tolerance:.0%})"
                )
    expected = baseline.get("store_warm")
    if expected is not None:
        entry = results["metrics"].get("store_warm")
        if entry is None:
            failures.append("store_warm: missing from results")
        else:
            # An absolute floor: a warm-store rerun must skip essentially
            # all scheduling work, regardless of host speed.
            floor = expected["min_speedup"]
            if entry["speedup"] < floor:
                failures.append(
                    f"store_warm: warm rerun {entry['speedup']:.1f}x over cold "
                    f"fell below the absolute {floor:.0f}x floor"
                )
    expected = baseline.get("dse_sweep")
    if expected is not None:
        entry = results["metrics"].get("dse_sweep")
        if entry is None:
            failures.append("dse_sweep: missing from results")
        else:
            # An absolute floor, like store_warm: the sweep engine must beat
            # the per-point serial path by the subsystem's acceptance
            # criterion on any host (the bench itself asserts the frontier
            # fingerprint and the cross-point dedupe counters).
            floor = expected["min_speedup"]
            if entry["speedup"] < floor:
                failures.append(
                    f"dse_sweep: sweep {entry['speedup']:.1f}x over the "
                    f"serial per-point path fell below the absolute "
                    f"{floor:.1f}x floor"
                )
            if entry["cross_point_deduped_solves"] <= 0:
                failures.append(
                    "dse_sweep: no cross-point solve sharing happened"
                )
    expected = baseline.get("cluster_scaling")
    if expected is not None:
        entry = results["metrics"].get("cluster_scaling")
        if entry is None:
            failures.append("cluster_scaling: missing from results")
        else:
            # An absolute floor on speedup per *available* core, so the gate
            # means "near-linear" on multi-core hosts and "no pathological
            # overhead" on single-core ones.
            floor = expected["min_core_efficiency"]
            if entry["core_efficiency"] < floor:
                failures.append(
                    f"cluster_scaling: core efficiency "
                    f"{entry['core_efficiency']:.2f} (speedup "
                    f"{entry['speedup']:.2f}x over "
                    f"{entry['available_parallelism']} cores) fell below "
                    f"the {floor:.2f} floor"
                )
    expected = baseline.get("tracing_overhead")
    if expected is not None:
        entry = results["metrics"].get("tracing_overhead")
        if entry is None:
            failures.append("tracing_overhead: missing from results")
        else:
            # An absolute ceiling (no tolerance scaling): enabled tracing
            # must never cost more than the acceptance criterion allows.
            ceiling = expected["max_enabled_overhead"]
            if entry["enabled_overhead"] > ceiling:
                failures.append(
                    f"tracing_overhead: enabled tracing costs "
                    f"{entry['enabled_overhead'] * 100:.2f} % (ceiling "
                    f"{ceiling * 100:.0f} %)"
                )
    expected = baseline.get("lr_vectorised")
    if expected is not None:
        entry = results["metrics"].get("lr_vectorised")
        if entry is None:
            failures.append("lr_vectorised: missing from results")
        elif not entry.get("numpy", False):
            # The dense backend cannot engage without numpy; the pure path
            # is still exercised (and gated bit-identical) by the test
            # suites, so a numpy-free host skips the throughput floor.
            pass
        else:
            # An absolute floor: the dense backend's acceptance criterion
            # is >= 3x batched admission throughput on any host.
            floor = expected["min_activation_speedup"]
            if entry["activation_speedup"] < floor:
                failures.append(
                    f"lr_vectorised: batched dense admission "
                    f"{entry['activation_speedup']:.2f}x over the pure path "
                    f"fell below the absolute {floor:.1f}x floor"
                )
            # The stacked-solver ratio is host-independent like the other
            # same-host A/B ratios and gated with the standard tolerance.
            floor = expected["solver_batch_speedup"] * (1.0 - tolerance)
            if entry["solver_batch_speedup"] < floor:
                failures.append(
                    f"lr_vectorised: stacked solver speedup "
                    f"{entry['solver_batch_speedup']:.2f} fell below "
                    f"{floor:.2f} (baseline "
                    f"{expected['solver_batch_speedup']:.2f} - {tolerance:.0%})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true", help="quick CI scale")
    parser.add_argument(
        "--skip-pytest",
        action="store_true",
        help="only measure the direct kernel metrics (no bench_*.py session)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail on a scheduling-rate regression vs BENCH_BASELINE.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression vs the baseline (default 0.25)",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "pytest_args", nargs="*", help="extra arguments forwarded to pytest"
    )
    options = parser.parse_args(argv)

    if options.smoke:
        for key, value in SMOKE_ENV.items():
            os.environ.setdefault(key, value)

    sys.path.insert(0, str(REPO_ROOT / "src"))

    from repro.optable import HAVE_NUMPY, columnar_enabled

    results: dict = {
        "meta": {
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
            "smoke": options.smoke,
            "numpy_fast_path": HAVE_NUMPY,
            "optable_default": columnar_enabled(),
            "bench_env": {
                key: os.environ.get(key)
                for key in (
                    "REPRO_BENCH_FRACTION",
                    "REPRO_BENCH_MAX_POINTS",
                    "REPRO_BENCH_SEED",
                    "REPRO_BENCH_WORKERS",
                    "REPRO_BENCH_STORE_POINTS",
                    "REPRO_BENCH_STORE_REQUESTS",
                    "REPRO_BENCH_STORE_TRACES",
                    "REPRO_BENCH_SWEEP_SIZES",
                    "REPRO_BENCH_SWEEP_SCENARIOS",
                    "REPRO_BENCH_SWEEP_FRACTION",
                )
                if os.environ.get(key) is not None
            },
        }
    }

    print("== direct kernel metrics (columnar vs list) ==")
    results["metrics"] = measure_kernel_metrics(repeats=options.repeats)
    for name, entry in sorted(results["metrics"].items()):
        if name.startswith("scheduling_rate/"):
            print(
                f"  {name}: {entry['throughput_columnar_per_s']:.0f}/s columnar, "
                f"{entry['throughput_list_per_s']:.0f}/s list "
                f"({entry['columnar_speedup']:.2f}x)"
            )
    kernel = results["metrics"]["kernel_incremental"]
    print(
        f"  kernel_incremental: {kernel['arrivals_per_s_kernel']:.0f}/s kernel, "
        f"{kernel['arrivals_per_s_seed']:.0f}/s seed "
        f"({kernel['speedup']:.2f}x arrival handling)"
    )
    gateway = results["metrics"]["gateway_throughput"]
    print(
        f"  gateway_throughput: {gateway['runs_per_s_warm']:.0f} runs/s warm "
        f"over {gateway['clients']} clients "
        f"({gateway['gateway_efficiency']:.0%} of in-process)"
    )
    store = results["metrics"]["store_warm"]
    print(
        f"  store_warm: {store['warm_s'] * 1e3:.0f} ms warm vs "
        f"{store['cold_s'] * 1e3:.0f} ms cold ({store['speedup']:.1f}x, "
        f"{store['warm_store_hits']} store hits)"
    )
    scaling = results["metrics"]["cluster_scaling"]
    print(
        f"  cluster_scaling: {scaling['speedup']:.2f}x with "
        f"{scaling['workers']} workers on {scaling['cpus']} cpus "
        f"({scaling['core_efficiency']:.0%} per available core)"
    )
    sweep = results["metrics"]["dse_sweep"]
    print(
        f"  dse_sweep: {sweep['speedup']:.1f}x over the serial per-point "
        f"path ({sweep['explorations_deduped']} explorations deduped, "
        f"{sweep['cross_point_deduped_solves']} cross-point solve shares)"
    )
    pareto = results["metrics"]["pareto_front"]
    print(
        f"  pareto_front: {pareto['engine_s'] * 1e3:.1f} ms engine vs "
        f"{pareto['reference_s'] * 1e3:.1f} ms reference ({pareto['speedup']:.1f}x)"
    )
    tracing = results["metrics"]["tracing_overhead"]
    print(
        f"  tracing_overhead: {tracing['enabled_ms']:.1f} ms traced vs "
        f"{tracing['disabled_ms']:.1f} ms untraced "
        f"({tracing['enabled_overhead']:+.2%}, {tracing['spans']} spans)"
    )
    lr = results["metrics"]["lr_vectorised"]
    print(
        f"  lr_vectorised: {lr['throughput_batched_per_s']:.0f}/s batched numpy "
        f"vs {lr['throughput_pure_per_s']:.0f}/s pure "
        f"({lr['activation_speedup']:.2f}x activations, "
        f"{lr['solver_batch_speedup']:.1f}x stacked solver)"
    )

    exit_code = 0
    if not options.skip_pytest:
        print("== benchmark suite (one shared pytest session) ==")
        results["benches"], exit_code = run_pytest_benches(options.pytest_args)
        for name, entry in sorted(results["benches"]["files"].items()):
            print(
                f"  {name}: {entry['wall_time_s']:.2f}s over "
                f"{entry['tests']} tests [{entry['status']}]"
            )

    failures: list[str] = []
    if options.check_baseline:
        failures = check_baseline(results, options.tolerance)
        results["baseline_check"] = {
            "tolerance": options.tolerance,
            "failures": failures,
        }
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)

    options.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {options.output}")
    return 1 if failures else exit_code


if __name__ == "__main__":
    raise SystemExit(main())
