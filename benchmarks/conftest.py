"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see EXPERIMENTS.md) and prints the corresponding rows/series.  The scale of
the underlying workload is controlled by environment variables so the same
harness serves both quick CI runs and full-scale reproductions:

* ``REPRO_BENCH_FRACTION`` — fraction of the Table III census to generate
  (default ``0.05``; ``1.0`` reproduces the full 1676-case workload).
* ``REPRO_BENCH_MAX_POINTS`` — cap on operating points per application used
  for the scheduler comparison (default ``8``); the exhaustive EX-MEM
  reference is exponential in this number.
* ``REPRO_BENCH_SEED`` — workload generator seed (default ``2020``).
* ``REPRO_BENCH_WORKERS`` — worker count for the service-throughput
  benchmark (default ``2``); the ``--workers`` command-line flag overrides
  it for quick smoke runs.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    """Smoke flag: override the service worker count from the command line."""
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        help="worker count for bench_service_throughput "
        "(default: REPRO_BENCH_WORKERS or 2)",
    )

from repro.analysis import evaluate_suite
from repro.dse import paper_operating_points, reduced_tables
from repro.platforms import odroid_xu4
from repro.schedulers import ExMemScheduler, MMKPLRScheduler, MMKPMDFScheduler
from repro.workload import EvaluationSuite
from repro.workload.suite import scaled_census, table_iii_census

BENCH_FRACTION = float(os.environ.get("REPRO_BENCH_FRACTION", "0.05"))
BENCH_MAX_POINTS = int(os.environ.get("REPRO_BENCH_MAX_POINTS", "8"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2020"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    """Worker count for the service benchmarks (--workers beats the env var)."""
    value = request.config.getoption("--workers")
    return BENCH_WORKERS if value is None else value


@pytest.fixture(scope="session")
def platform():
    """The Odroid XU4 platform model used throughout the evaluation."""
    return odroid_xu4()


@pytest.fixture(scope="session")
def full_tables(platform):
    """Full DSE-generated operating-point tables (all apps and input sizes)."""
    return paper_operating_points(platform)


@pytest.fixture(scope="session")
def bench_tables(full_tables):
    """Tables capped for the scheduler comparison (EX-MEM tractability)."""
    return reduced_tables(full_tables, max_points=BENCH_MAX_POINTS)


@pytest.fixture(scope="session")
def bench_suite(bench_tables):
    """The evaluation workload at the configured census fraction."""
    census = (
        table_iii_census() if BENCH_FRACTION >= 1.0 else scaled_census(BENCH_FRACTION)
    )
    return EvaluationSuite.generate(bench_tables, census, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_schedulers():
    """The three schedulers of the paper's evaluation."""
    return [ExMemScheduler(), MMKPLRScheduler(), MMKPMDFScheduler()]


@pytest.fixture(scope="session")
def suite_results(bench_suite, platform, bench_tables, bench_schedulers):
    """Every scheduler run on every test case — shared by Fig.2/3/4 and Table IV."""
    return evaluate_suite(bench_suite, platform, bench_tables, bench_schedulers)


@pytest.fixture(scope="session")
def scale_note() -> str:
    """Human-readable reminder of the configured benchmark scale."""
    return (
        f"[workload fraction={BENCH_FRACTION}, max operating points per app="
        f"{BENCH_MAX_POINTS}, seed={BENCH_SEED}]"
    )
