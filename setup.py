"""Setup shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments whose setuptools lacks PEP 660 support.
"""

from setuptools import setup

setup()
